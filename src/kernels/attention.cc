#include "src/kernels/attention.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "src/base/check.h"
#include "src/base/math_util.h"
#include "src/exec/thread_pool.h"
#include "src/hexsim/hmx.h"

namespace hkern {

using hexllm::F16;
using hexllm::RoundToF16;
using hexsim::DmaDirection;
using hexsim::HmxEngine;
using hexsim::HvxContext;
using hexsim::HvxVec;
using hexsim::HvxVecPair;

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

// Packet cost of packing one 32x32 FP16 tile into the Figure 4a layout with VShuffH-style
// cross-lane shuffles (16 row-pairs, one shuffle step each — matching §3.1.2's "HVX
// cross-lane shuffling on every two adjacent rows").
constexpr int kTilePackPackets = 16;
constexpr int kTileUnpackPackets = 4;  // streaming store of an already-shuffled accumulator

// Packs src[r * src_stride + c] (with transpose option) into an HMX-layout tile, zero-padding
// rows/cols beyond the valid range. Only the occupied region is visited (one memset covers
// the padding), so a decode-shaped tile with a single live row costs ~32 stores, not 1024.
void PackTilePadded(const F16* src, int64_t src_stride, int valid_rows, int valid_cols,
                    bool transpose, F16* tile) {
  const int tile_rows = transpose ? valid_cols : valid_rows;
  const int tile_cols = transpose ? valid_rows : valid_cols;
  if (tile_rows < HmxEngine::kTileDim || tile_cols < HmxEngine::kTileDim) {
    std::memset(static_cast<void*>(tile), 0, HmxEngine::kTileBytes);  // F16 zero = zero bits
  }
  for (int r = 0; r < tile_rows; ++r) {
    for (int c = 0; c < tile_cols; ++c) {
      const int sr = transpose ? c : r;
      const int sc = transpose ? r : c;
      tile[HmxEngine::TileHalfwordOffset(r, c)] = src[sr * src_stride + sc];
    }
  }
}

// K/V staging policies for the shared attention core. Both charge the DMA engine with one
// descriptor of (head_dim * 2)-byte rows x n rows per call — DmaEngine::Cost2D depends only
// on row bytes, row count and direction, so the two policies are charge-identical and the
// paged kernel's counters match the gather-then-contiguous path bit for bit.
struct ContigKvRows {
  const F16* base;
  int64_t stride;  // elements between consecutive KV positions

  void Stage(hexsim::NpuDevice& dev, F16* dst, int j0, int n, int head_dim) const {
    dev.dma().Transfer2D(dst, head_dim * 2, base + static_cast<int64_t>(j0) * stride,
                         stride * 2, head_dim * 2, n, DmaDirection::kDdrToTcm);
  }
};

struct PagedKvRows {
  const F16* const* blocks;
  int block_tokens;
  int64_t row_stride;
  int64_t head_offset;

  void Stage(hexsim::NpuDevice& dev, F16* dst, int j0, int n, int head_dim) const {
    // Charge-only descriptor (null pointers move no bytes but cost the same), then copy the
    // rows block-by-block — same bytes staged, same DMA accounting.
    dev.dma().Transfer2D(nullptr, head_dim * 2, nullptr, head_dim * 2, head_dim * 2, n,
                         DmaDirection::kDdrToTcm);
    for (int r = 0; r < n; ++r) {
      const int j = j0 + r;
      const F16* src = blocks[j / block_tokens] +
                       static_cast<int64_t>(j % block_tokens) * row_stride + head_offset;
      std::memcpy(dst + static_cast<int64_t>(r) * head_dim, src,
                  static_cast<size_t>(head_dim) * 2);
    }
  }
};

// Quantized paged staging: DMA is charged the *quantized* row bytes (payload + scales for
// this head's slice) instead of the F16 bytes, then each group is dequantized into the F16
// TCM staging buffer. The dequant work is charged as HVX packets under "attn.kv_dequant"
// following the DequantCoalescedLut shape (mixed_gemm.cc): INT4 costs 17 packets per 256
// elements (nibble extract via vand/vshr + 2 level VLut16 + 2 scale-broadcast VLut16 +
// multiply/store), INT8 costs 3 packets per 64 elements (load + widen + scale-multiply, no
// table lookups). vlut16 instruction-class counters are bumped for the INT4 lookups.
struct PagedQuantKvRows {
  const uint8_t* const* blocks;
  int block_tokens;
  int64_t row_bytes;        // bytes between consecutive KV positions in a block
  int64_t payload_offset;   // row start -> this head's payload
  int64_t scales_offset;    // row start -> this head's first F16 scale
  int group;
  hquant::KvDtype dtype;
  int64_t staged_row_bytes;  // quantized bytes staged per row for this head

  void Stage(hexsim::NpuDevice& dev, F16* dst, int j0, int n, int head_dim) const {
    dev.dma().Transfer2D(nullptr, staged_row_bytes, nullptr, staged_row_bytes,
                         staged_row_bytes, n, DmaDirection::kDdrToTcm);
    const int groups = head_dim / group;
    const int64_t group_payload = hquant::KvPayloadBytes(dtype, group);
    for (int r = 0; r < n; ++r) {
      const int j = j0 + r;
      const uint8_t* row =
          blocks[j / block_tokens] + static_cast<int64_t>(j % block_tokens) * row_bytes;
      const uint8_t* payload = row + payload_offset;
      const uint8_t* scales = row + scales_offset;
      F16* out = dst + static_cast<int64_t>(r) * head_dim;
      for (int g = 0; g < groups; ++g) {
        uint16_t d_bits;
        std::memcpy(&d_bits, scales + static_cast<int64_t>(g) * 2, 2);
        const float d = hexllm::F16BitsToF32(d_bits);
        if (dtype == hquant::KvDtype::kInt4) {
          hquant::KvDequantGroupInt4(payload + g * group_payload, d, group, out + g * group);
        } else {
          hquant::KvDequantGroupInt8(
              reinterpret_cast<const int8_t*>(payload + g * group_payload), d, group,
              out + g * group);
        }
      }
    }
    const int64_t elems = static_cast<int64_t>(n) * head_dim;
    int64_t packets;
    int64_t vlut16_ops = 0;
    if (dtype == hquant::KvDtype::kInt4) {
      packets = (elems * 17 + 255) / 256;    // 17 packets per 256-element super-block
      vlut16_ops = (elems * 4 + 255) / 256;  // 2 level + 2 scale lookups per super-block
    } else {
      packets = (elems * 3 + 63) / 64;  // load + widen + scale-multiply per register
    }
    dev.hvx().ReplayOps(0, 0, vlut16_ops);
    dev.CommitHvxPackets(packets, 1, "attn.kv_dequant");
  }
};

// Drops a window that is disabled or covers the whole KV range, so full-coverage windowed
// calls run the exact legacy code path (bit-identical charges and outputs).
const AttnWindowSpec* NormalizeWindow(const AttnWindowSpec* window, int q_len, int kv_len,
                                      int q_pos_offset) {
  if (window == nullptr || !window->enabled()) {
    return nullptr;
  }
  const int eff_off = q_pos_offset >= 0 ? q_pos_offset : kv_len - q_len;
  return window->CoversAll(eff_off + q_len - 1) ? nullptr : window;
}

// Algorithm 1 core, shared by the contiguous and paged entry points. `KvRows::Stage` fills
// the TCM staging buffer with KV positions [j0, j0 + n); Q/O rows are strided by
// q_stride/o_stride elements so callers can point directly into packed activations.
template <typename KvRows>
void FlashAttentionCore(hexsim::NpuDevice& dev, const ExpLut& lut, SoftmaxVariant exp_variant,
                        const F16* q, int64_t q_stride, const KvRows& k_rows,
                        const KvRows& v_rows, F16* o, int64_t o_stride, int q_len,
                        int kv_len, int head_dim, float scale, int q_pos_offset,
                        const AttnWindowSpec* window) {
  const bool causal = q_pos_offset >= 0;
  const AttnWindowSpec* win = NormalizeWindow(window, q_len, kv_len, q_pos_offset);
  // Absolute position of query row 0: rows align to the end of kv when no causal offset is
  // given (the single-row decode convention).
  const int win_off = causal ? q_pos_offset : kv_len - q_len;
  if (win != nullptr) {
    dev.ledger().AddCount("kernel.flash_attention.windowed_calls");
  }
  HEXLLM_CHECK(head_dim % HmxEngine::kTileDim == 0);
  HEXLLM_CHECK(q_len > 0 && kv_len > 0);
  dev.ledger().AddCount("kernel.flash_attention.calls");
  const int d_tiles = head_dim / HmxEngine::kTileDim;
  const int q_tiles = static_cast<int>(hexllm::CeilDiv(q_len, kAttnQTile));
  const int kv_chunks = static_cast<int>(hexllm::CeilDiv(kv_len, kAttnKvChunk));
  const int parallel_rows = q_len;  // rows in flight across HVX threads (gather contention)

  HvxContext& ctx = dev.hvx();
  HmxEngine& hmx = dev.hmx();
  hexsim::Tcm& tcm = dev.tcm();
  hexsim::TcmFrame frame(tcm);

  // TCM working set for one (q-tile, kv-chunk) step.
  F16* q_tiles_mem = reinterpret_cast<F16*>(
      tcm.Alloc(static_cast<int64_t>(d_tiles) * HmxEngine::kTileBytes));
  F16* kt_tiles_mem = reinterpret_cast<F16*>(
      tcm.Alloc(static_cast<int64_t>(4) * d_tiles * HmxEngine::kTileBytes));
  F16* v_tiles_mem = reinterpret_cast<F16*>(
      tcm.Alloc(static_cast<int64_t>(4) * d_tiles * HmxEngine::kTileBytes));
  F16* p_tiles_mem = reinterpret_cast<F16*>(tcm.Alloc(4 * HmxEngine::kTileBytes));
  F16* s_rows = reinterpret_cast<F16*>(tcm.Alloc(kAttnQTile * kAttnKvChunk * 2));
  F16* o_rows = reinterpret_cast<F16*>(
      tcm.Alloc(static_cast<int64_t>(kAttnQTile) * head_dim * 2));
  F16* kv_stage = reinterpret_cast<F16*>(
      tcm.Alloc(static_cast<int64_t>(kAttnKvChunk) * head_dim * 2));
  F16* pv_tile = reinterpret_cast<F16*>(tcm.Alloc(HmxEngine::kTileBytes));

  // Stack scratch: the decode hot path must not heap-allocate (docs/performance.md).
  float acc[HmxEngine::kTileElems];
  float col_scale[HmxEngine::kTileDim];
  std::fill(col_scale, col_scale + HmxEngine::kTileDim, scale);

  for (int qt = 0; qt < q_tiles; ++qt) {
    const int q0 = qt * kAttnQTile;
    const int rows = std::min(kAttnQTile, q_len - q0);

    // Load and pack the Q tile strip.
    dev.dma().Transfer2D(kv_stage, head_dim * 2, q + static_cast<int64_t>(q0) * q_stride,
                         q_stride * 2, head_dim * 2, rows, DmaDirection::kDdrToTcm);
    int64_t pack_packets = 0;
    for (int dt = 0; dt < d_tiles; ++dt) {
      PackTilePadded(kv_stage + dt * HmxEngine::kTileDim, head_dim, rows, HmxEngine::kTileDim,
                     /*transpose=*/false, q_tiles_mem + dt * HmxEngine::kTileElems);
      pack_packets += kTilePackPackets;
    }

    float m_run[kAttnQTile];
    float l_run[kAttnQTile];
    std::fill(m_run, m_run + rows, kNegInf);
    std::fill(l_run, l_run + rows, 0.0f);
    std::fill(o_rows, o_rows + static_cast<int64_t>(rows) * head_dim, F16::Zero());

    int64_t softmax_packets = 0;
    int64_t rescale_packets = 0;
    int64_t qk_tile_ops = 0;
    int64_t pv_tile_ops = 0;

    for (int chunk = 0; chunk < kv_chunks; ++chunk) {
      const int kv0 = chunk * kAttnKvChunk;
      const int kvn = std::min(kAttnKvChunk, kv_len - kv0);
      const int kvt = static_cast<int>(hexllm::CeilDiv(kvn, HmxEngine::kTileDim));
      if (causal && kv0 > q_pos_offset + q0 + rows - 1) {
        continue;  // every position in this chunk is in the future for every row
      }
      if (win != nullptr && win->ChunkFullyMasked(kv0, kvn, win_off + q0)) {
        continue;  // interior chunk outside every row's sink+window span: never staged
      }

      // Stage K rows and pack K^T tiles (weight layout: [head_dim x kv] tiles).
      k_rows.Stage(dev, kv_stage, kv0, kvn, head_dim);
      for (int t = 0; t < kvt; ++t) {
        const int tile_rows = std::min(HmxEngine::kTileDim, kvn - t * HmxEngine::kTileDim);
        for (int dt = 0; dt < d_tiles; ++dt) {
          // K arrives pre-packed: the runtime writes the KV cache in HMX layout when rows
          // are appended, so no per-q-tile shuffle cost recurs here.
          PackTilePadded(kv_stage + static_cast<int64_t>(t) * HmxEngine::kTileDim * head_dim +
                             dt * HmxEngine::kTileDim,
                         head_dim, tile_rows, HmxEngine::kTileDim, /*transpose=*/true,
                         kt_tiles_mem + (t * d_tiles + dt) * HmxEngine::kTileElems);
        }
      }
      // Stage V rows and pack V tiles ([kv x head_dim]).
      v_rows.Stage(dev, kv_stage, kv0, kvn, head_dim);
      for (int t = 0; t < kvt; ++t) {
        const int tile_rows = std::min(HmxEngine::kTileDim, kvn - t * HmxEngine::kTileDim);
        for (int dt = 0; dt < d_tiles; ++dt) {
          PackTilePadded(kv_stage + static_cast<int64_t>(t) * HmxEngine::kTileDim * head_dim +
                             dt * HmxEngine::kTileDim,
                         head_dim, tile_rows, HmxEngine::kTileDim, /*transpose=*/false,
                         v_tiles_mem + (t * d_tiles + dt) * HmxEngine::kTileElems);
        }
      }

      // S chunk = scale * (Q K^T): HMX with FP32 accumulation, written back as FP16 rows.
      for (int t = 0; t < kvt; ++t) {
        std::fill(acc, acc + HmxEngine::kTileElems, 0.0f);
        for (int dt = 0; dt < d_tiles; ++dt) {
          hmx.TileMacc(tcm, q_tiles_mem + dt * HmxEngine::kTileElems,
                       kt_tiles_mem + (t * d_tiles + dt) * HmxEngine::kTileElems, acc);
          ++qk_tile_ops;
        }
        hmx.StoreAcc(acc, pv_tile, col_scale, nullptr, rows);
        // Unpack the S tile into row-major chunk columns [t*32, t*32+32) — live rows only,
        // the padded rows are never read (softmax and P-packing stop at `rows`).
        for (int r = 0; r < rows; ++r) {
          for (int c = 0; c < HmxEngine::kTileDim; ++c) {
            s_rows[r * kAttnKvChunk + t * HmxEngine::kTileDim + c] =
                pv_tile[HmxEngine::TileHalfwordOffset(r, c)];
          }
        }
        pack_packets += kTileUnpackPackets;
      }
      // Mask padded KV positions so they contribute exp(-inf) = 0.
      if (kvn < kAttnKvChunk) {
        for (int r = 0; r < rows; ++r) {
          for (int c = kvn; c < kAttnKvChunk; ++c) {
            s_rows[r * kAttnKvChunk + c] = F16::NegInf();
          }
        }
        ctx.Charge(1);
      }
      // Causal mask: row r (global position q_pos_offset + q0 + r) must not see KV
      // positions beyond itself. Applied as a precomputed -inf mask register per row pair.
      if (causal) {
        for (int r = 0; r < rows; ++r) {
          const int limit = q_pos_offset + q0 + r;  // last visible KV position
          for (int c = 0; c < kvn; ++c) {
            if (kv0 + c > limit) {
              s_rows[r * kAttnKvChunk + c] = F16::NegInf();
            }
          }
        }
        ctx.Charge(rows);  // one masked vmux sweep per row (2 regs, amortized)
      }
      // Sliding-window + sink mask: positions between the sink prefix and the row's
      // trailing window contribute exp(-inf) = 0, same mechanism as the causal mask.
      if (win != nullptr) {
        for (int r = 0; r < rows; ++r) {
          const int qa = win_off + q0 + r;
          for (int c = 0; c < kvn; ++c) {
            if (win->Masked(kv0 + c, qa)) {
              s_rows[r * kAttnKvChunk + c] = F16::NegInf();
            }
          }
        }
        ctx.Charge(rows);  // one masked vmux sweep per row, mirroring the causal charge
      }

      // Online softmax over the chunk (2 registers per row).
      const int64_t sm_start = ctx.packets();
      for (int r = 0; r < rows; ++r) {
        F16* srow = s_rows + r * kAttnKvChunk;
        HvxVec va = ctx.LoadAligned(srow);
        HvxVec vb = ctx.LoadAligned(srow + HvxVec::kHalfwords);
        const float chunk_max = ctx.ReduceMaxHf(ctx.VMaxHf(va, vb));
        const float m_new = std::max(m_run[r], chunk_max);
        ctx.ChargeScalar(3);  // m/alpha bookkeeping on the scalar core
        const float alpha =
            (m_run[r] == kNegInf) ? 0.0f : RoundToF16(std::exp(RoundToF16(m_run[r] - m_new)));
        const HvxVec vm = ctx.VSplatHf(m_new);
        HvxVec acc_sum = ctx.VSplatSf(0.0f);
        float row_sum = 0.0f;
        for (int g = 0; g < 2; ++g) {
          F16* chunk_ptr = srow + g * HvxVec::kHalfwords;
          HvxVec x = ctx.LoadAligned(chunk_ptr);
          x = ctx.VSubHf(x, vm);
          const HvxVec e = ExpNonPosF16(dev, exp_variant, &lut, x, parallel_rows);
          ctx.Store(chunk_ptr, e);
          const HvxVecPair wide = ctx.WidenHfToSf(e);
          acc_sum = ctx.VAddSf(acc_sum, wide.lo);
          acc_sum = ctx.VAddSf(acc_sum, wide.hi);
        }
        row_sum = ctx.ReduceSumSf(acc_sum);
        ctx.ChargeScalar(2);
        l_run[r] = RoundToF16(RoundToF16(alpha * l_run[r]) + row_sum);
        m_run[r] = m_new;

        // Rescale O rows by alpha (deferred: multiply now, add PV below).
        if (alpha != 1.0f) {
          for (int c = 0; c < head_dim; ++c) {
            o_rows[r * head_dim + c] = F16(RoundToF16(alpha * o_rows[r * head_dim + c].ToFloat()));
          }
        }
        rescale_packets += (head_dim / HvxVec::kHalfwords) * 3;  // load, mul, store per reg
      }
      softmax_packets += ctx.packets() - sm_start;

      // Pack P tiles from the post-softmax chunk.
      for (int t = 0; t < kvt; ++t) {
        PackTilePadded(s_rows + t * HmxEngine::kTileDim, kAttnKvChunk, rows,
                       std::min(HmxEngine::kTileDim, kvn - t * HmxEngine::kTileDim),
                       /*transpose=*/false, p_tiles_mem + t * HmxEngine::kTileElems);
        pack_packets += kTilePackPackets;
      }

      // O += P V (HMX, FP32 accumulation), added into the FP16 O rows.
      for (int dt = 0; dt < d_tiles; ++dt) {
        std::fill(acc, acc + HmxEngine::kTileElems, 0.0f);
        for (int t = 0; t < kvt; ++t) {
          hmx.TileMacc(tcm, p_tiles_mem + t * HmxEngine::kTileElems,
                       v_tiles_mem + (t * d_tiles + dt) * HmxEngine::kTileElems, acc);
          ++pv_tile_ops;
        }
        hmx.StoreAcc(acc, pv_tile, nullptr, nullptr, rows);
        for (int r = 0; r < rows; ++r) {
          for (int c = 0; c < HmxEngine::kTileDim; ++c) {
            F16& dst = o_rows[r * head_dim + dt * HmxEngine::kTileDim + c];
            dst = F16(RoundToF16(dst.ToFloat() +
                                 pv_tile[HmxEngine::TileHalfwordOffset(r, c)].ToFloat()));
          }
        }
        pack_packets += kTileUnpackPackets;
        rescale_packets += (HmxEngine::kTileDim * kAttnQTile / HvxVec::kHalfwords) * 2;
      }
    }

    // Final normalization: O = diag(1/l) O, then DMA the valid rows out.
    for (int r = 0; r < rows; ++r) {
      ctx.ChargeScalar(2);
      const float inv = (l_run[r] > 0.0f) ? 1.0f / l_run[r] : 0.0f;
      for (int c = 0; c < head_dim; ++c) {
        o_rows[r * head_dim + c] = F16(RoundToF16(inv * o_rows[r * head_dim + c].ToFloat()));
      }
      rescale_packets += (head_dim / HvxVec::kHalfwords) * 3;
    }
    dev.dma().Transfer2D(o + static_cast<int64_t>(q0) * o_stride, o_stride * 2, o_rows,
                         head_dim * 2, head_dim * 2, rows, DmaDirection::kTcmToDdr);

    // Commit HVX costs with component tags (packets were counted locally above).
    dev.CommitHvxPackets(softmax_packets, 1, "attn.softmax");
    dev.CommitHvxPackets(rescale_packets, 1, "attn.rescale");
    dev.CommitHvxPackets(pack_packets, 1, "attn.pack");
    dev.CommitHmxTileOps(qk_tile_ops, "attn.qk");
    dev.CommitHmxTileOps(pv_tile_ops, "attn.pv");
    ctx.ResetPackets();
  }
}

}  // namespace

AttnWindowSpec AttnWindowFromEnv(AttnWindowSpec spec) {
  if (const char* s = std::getenv("HEXLLM_ATTN_SINK_BLOCKS"); s != nullptr && *s != '\0') {
    spec.sink_blocks = std::atoi(s);
  }
  if (const char* s = std::getenv("HEXLLM_ATTN_WINDOW_BLOCKS"); s != nullptr && *s != '\0') {
    spec.window_blocks = std::atoi(s);
  }
  return spec;
}

void AppendAttendedBlocks(const AttnWindowSpec* window, int q_len, int kv_len,
                          int q_pos_offset, int block_tokens, std::vector<int>* out) {
  HEXLLM_CHECK(block_tokens >= 1);
  if (q_len <= 0 || kv_len <= 0) {
    return;
  }
  const AttnWindowSpec* win = NormalizeWindow(window, q_len, kv_len, q_pos_offset);
  const bool causal = q_pos_offset >= 0;
  const int win_off = causal ? q_pos_offset : kv_len - q_len;
  const int q_tiles = static_cast<int>(hexllm::CeilDiv(q_len, kAttnQTile));
  const int kv_chunks = static_cast<int>(hexllm::CeilDiv(kv_len, kAttnKvChunk));
  int prev_last = -1;  // chunks ascend, so blocks ascend: dedup is a high-water mark
  for (int chunk = 0; chunk < kv_chunks; ++chunk) {
    const int kv0 = chunk * kAttnKvChunk;
    const int kvn = std::min(kAttnKvChunk, kv_len - kv0);
    // A chunk is staged iff some q-tile both causally reaches it and does not have it
    // fully window-masked — the exact pair of skip predicates in FlashAttentionCore.
    bool staged = false;
    for (int qt = 0; qt < q_tiles && !staged; ++qt) {
      const int q0 = qt * kAttnQTile;
      const int rows = std::min(kAttnQTile, q_len - q0);
      if (causal && kv0 > q_pos_offset + q0 + rows - 1) {
        continue;
      }
      if (win != nullptr && win->ChunkFullyMasked(kv0, kvn, win_off + q0)) {
        continue;
      }
      staged = true;
    }
    if (!staged) {
      continue;
    }
    const int first = kv0 / block_tokens;
    const int last = (kv0 + kvn - 1) / block_tokens;
    for (int b = std::max(first, prev_last + 1); b <= last; ++b) {
      out->push_back(b);
    }
    prev_last = last;
  }
}

void FlashAttentionF16(hexsim::NpuDevice& dev, const ExpLut& lut, SoftmaxVariant exp_variant,
                       const F16* q, const F16* k, const F16* v, F16* o, int q_len, int kv_len,
                       int head_dim, float scale, int q_pos_offset) {
  const ContigKvRows k_rows{k, head_dim};
  const ContigKvRows v_rows{v, head_dim};
  FlashAttentionCore(dev, lut, exp_variant, q, head_dim, k_rows, v_rows, o, head_dim, q_len,
                     kv_len, head_dim, scale, q_pos_offset, /*window=*/nullptr);
}

void FlashAttentionPagedF16(hexsim::NpuDevice& dev, const ExpLut& lut,
                            SoftmaxVariant exp_variant, const F16* q, int64_t q_stride,
                            const PagedKvHeadView& kv, F16* o, int64_t o_stride, int q_len,
                            int kv_len, int head_dim, float scale, int q_pos_offset,
                            const AttnWindowSpec* window) {
  HEXLLM_CHECK(kv.k_blocks != nullptr && kv.v_blocks != nullptr && kv.block_tokens >= 1);
  const PagedKvRows k_rows{kv.k_blocks, kv.block_tokens, kv.row_stride, kv.head_offset};
  const PagedKvRows v_rows{kv.v_blocks, kv.block_tokens, kv.row_stride, kv.head_offset};
  FlashAttentionCore(dev, lut, exp_variant, q, q_stride, k_rows, v_rows, o, o_stride, q_len,
                     kv_len, head_dim, scale, q_pos_offset, window);
}

void FlashAttentionPagedQ(hexsim::NpuDevice& dev, const ExpLut& lut,
                          SoftmaxVariant exp_variant, const F16* q, int64_t q_stride,
                          const PagedQKvHeadView& kv, F16* o, int64_t o_stride, int q_len,
                          int kv_len, int head_dim, float scale, int q_pos_offset,
                          const AttnWindowSpec* window) {
  HEXLLM_CHECK(kv.k_blocks != nullptr && kv.v_blocks != nullptr && kv.block_tokens >= 1);
  HEXLLM_CHECK(kv.dtype != hquant::KvDtype::kF16);
  HEXLLM_CHECK(kv.group >= 2 && head_dim % kv.group == 0);
  dev.ledger().AddCount("kernel.attn_kv_dequant.calls");
  const int64_t staged_row_bytes =
      hquant::KvPayloadBytes(kv.dtype, head_dim) + (head_dim / kv.group) * 2;
  const PagedQuantKvRows k_rows{kv.k_blocks,       kv.block_tokens, kv.row_bytes,
                                kv.payload_offset, kv.scales_offset, kv.group,
                                kv.dtype,          staged_row_bytes};
  const PagedQuantKvRows v_rows{kv.v_blocks,       kv.block_tokens, kv.row_bytes,
                                kv.payload_offset, kv.scales_offset, kv.group,
                                kv.dtype,          staged_row_bytes};
  FlashAttentionCore(dev, lut, exp_variant, q, q_stride, k_rows, v_rows, o, o_stride, q_len,
                     kv_len, head_dim, scale, q_pos_offset, window);
}

void FlashAttentionHeadsF16(
    hexsim::NpuDevice& dev, std::span<const ExpLut* const> slot_luts,
    SoftmaxVariant exp_variant, int heads,
    const std::function<void(int head, F16* k_dst, F16* v_dst, F16* q_dst)>& gather,
    F16* attn_out, int out_stride, int q_len, int kv_len, int head_dim, float scale,
    int q_pos_offset) {
  HEXLLM_CHECK(heads >= 1 && !slot_luts.empty());
  const int slots = std::min(hexec::PlannedSlots(heads),
                             static_cast<int>(slot_luts.size()));
  dev.EnsureShards(slots);
  hexec::ParallelFor(
      heads,
      [&](int64_t h_begin, int64_t h_end, int slot) {
        hexsim::NpuDevice& d = dev.ForSlot(slot);
        const ExpLut& lut = *slot_luts[static_cast<size_t>(slot)];
        std::vector<F16> k_head(static_cast<size_t>(kv_len) * head_dim);
        std::vector<F16> v_head(static_cast<size_t>(kv_len) * head_dim);
        std::vector<F16> q_head(static_cast<size_t>(q_len) * head_dim);
        std::vector<F16> o_head(static_cast<size_t>(q_len) * head_dim);
        for (int64_t h = h_begin; h < h_end; ++h) {
          gather(static_cast<int>(h), k_head.data(), v_head.data(), q_head.data());
          FlashAttentionF16(d, lut, exp_variant, q_head.data(), k_head.data(), v_head.data(),
                            o_head.data(), q_len, kv_len, head_dim, scale, q_pos_offset);
          for (int r = 0; r < q_len; ++r) {
            std::memcpy(attn_out + static_cast<int64_t>(r) * out_stride + h * head_dim,
                        o_head.data() + static_cast<size_t>(r) * head_dim,
                        static_cast<size_t>(head_dim) * 2);
          }
        }
      },
      slots);
  dev.MergeShards();
}

void AttentionF32Reference(const float* q, const float* k, const float* v, float* o, int q_len,
                           int kv_len, int head_dim, float scale) {
  std::vector<double> s(static_cast<size_t>(kv_len));
  for (int i = 0; i < q_len; ++i) {
    const float* qi = q + static_cast<int64_t>(i) * head_dim;
    double m = -std::numeric_limits<double>::infinity();
    for (int j = 0; j < kv_len; ++j) {
      const float* kj = k + static_cast<int64_t>(j) * head_dim;
      double dot = 0.0;
      for (int c = 0; c < head_dim; ++c) {
        dot += static_cast<double>(qi[c]) * kj[c];
      }
      s[static_cast<size_t>(j)] = dot * scale;
      m = std::max(m, s[static_cast<size_t>(j)]);
    }
    double l = 0.0;
    for (int j = 0; j < kv_len; ++j) {
      s[static_cast<size_t>(j)] = std::exp(s[static_cast<size_t>(j)] - m);
      l += s[static_cast<size_t>(j)];
    }
    float* oi = o + static_cast<int64_t>(i) * head_dim;
    for (int c = 0; c < head_dim; ++c) {
      double acc = 0.0;
      for (int j = 0; j < kv_len; ++j) {
        acc += s[static_cast<size_t>(j)] * v[static_cast<int64_t>(j) * head_dim + c];
      }
      oi[c] = static_cast<float>(acc / l);
    }
  }
}

AttentionCost FlashAttentionCost(const hexsim::DeviceProfile& profile,
                                 SoftmaxVariant exp_variant, int q_len, int kv_len,
                                 int head_dim) {
  AttentionCost cost;
  const int d_tiles = head_dim / HmxEngine::kTileDim;
  const int q_tiles = static_cast<int>(hexllm::CeilDiv(q_len, kAttnQTile));
  const int kv_tiles = static_cast<int>(hexllm::CeilDiv(kv_len, HmxEngine::kTileDim));
  const int kv_chunks = static_cast<int>(hexllm::CeilDiv(kv_len, kAttnKvChunk));

  hexsim::HmxEngine hmx(profile);
  const int64_t mm_tile_ops = static_cast<int64_t>(q_tiles) * kv_tiles * d_tiles;
  cost.hmx_qk_s = hmx.TileOpsToSeconds(mm_tile_ops);
  cost.hmx_pv_s = hmx.TileOpsToSeconds(mm_tile_ops);

  // Softmax: per valid row per chunk: rowmax(2+1+7) + scalar(3) + 2 splats +
  // 2 regs x (load+sub+exp+store+widen2+2adds = 7+E) + reduce(6) + scalar(2).
  const int64_t exp_cost = ExpRegPacketCost(profile, exp_variant, q_len);
  const int64_t per_row_chunk = 10 + 3 + 2 + 2 * (7 + exp_cost) + 6 + 2;
  const int64_t softmax_packets =
      static_cast<int64_t>(q_len) * kv_chunks * per_row_chunk;
  const double hz = profile.hvx_freq_ghz * 1e9;
  cost.hvx_softmax_s = static_cast<double>(softmax_packets) / hz;

  // Rescale: per chunk per row: O-rescale (d/64 regs x 3) + PV accumulate
  // (d_tiles x 32x32/64 x 2 per tile row... simplified to the emulation's charges) and the
  // final normalization sweep.
  const int64_t regs_d = head_dim / HvxVec::kHalfwords;
  const int64_t rescale_packets =
      static_cast<int64_t>(q_len) * kv_chunks * regs_d * 3 +
      static_cast<int64_t>(q_tiles) * kv_chunks * d_tiles *
          (HmxEngine::kTileDim * kAttnQTile / HvxVec::kHalfwords) * 2 +
      static_cast<int64_t>(q_len) * regs_d * 3;
  cost.hvx_rescale_s = static_cast<double>(rescale_packets) / hz;

  // Packing: Q tiles once per q-tile; P packs and S/PV unpacks per chunk. K/V tiles arrive
  // pre-packed (the runtime stores the KV cache in HMX layout at append time).
  const int64_t pack_packets =
      static_cast<int64_t>(q_tiles) *
      (d_tiles * kTilePackPackets +
       static_cast<int64_t>(kv_tiles) * (kTilePackPackets + kTileUnpackPackets) +  // P, S
       static_cast<int64_t>(kv_chunks) * d_tiles * kTileUnpackPackets);  // PV
  cost.hvx_pack_s = static_cast<double>(pack_packets) / hz;

  // DMA: Q in + O out once per q-tile; K and V per (q-tile, chunk).
  hexsim::CycleLedger scratch;
  hexsim::DmaEngine dma(profile, scratch);
  const double q_dma = dma.Cost2D(head_dim * 2, std::min(q_len, kAttnQTile), DmaDirection::kDdrToTcm);
  const double kv_dma = dma.Cost2D(head_dim * 2, std::min(kv_len, kAttnKvChunk), DmaDirection::kDdrToTcm);
  cost.dma_s = q_tiles * (2 * q_dma + kv_chunks * 2 * kv_dma);
  return cost;
}

}  // namespace hkern

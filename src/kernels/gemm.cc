#include "src/kernels/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/base/check.h"
#include "src/base/math_util.h"
#include "src/exec/thread_pool.h"
#include "src/hexsim/hmx.h"

namespace hkern {

using hexllm::F16;
using hexsim::DmaDirection;
using hexsim::HmxEngine;
using hexsim::HvxContext;
using hexsim::HvxVec;

int64_t GemmF16HmxTileOps(int m, int k, int n) {
  return static_cast<int64_t>(hexllm::CeilDiv(m, 32)) * hexllm::CeilDiv(k, 32) *
         hexllm::CeilDiv(n, 32);
}

double GemmF16Hmx(hexsim::NpuDevice& dev, const F16* a, const F16* b_tiles, F16* c, int m,
                  int k, int n, bool operands_in_tcm, int valid_m) {
  HEXLLM_CHECK(m % 32 == 0 && k % 32 == 0 && n % 32 == 0);
  if (valid_m < 0) {
    valid_m = m;
  }
  HEXLLM_CHECK(valid_m <= m);
  dev.ledger().AddCount("kernel.gemm_hmx.calls");

  const int mt = m / 32;
  const int kt = k / 32;
  const int nt = n / 32;

  // Row-strips are independent: each ParallelFor slot runs the legacy strip loop against
  // its own shard device (private TCM scratch + counters), writing a disjoint slice of `c`.
  // The decomposition is deterministic and every output tile sees the identical op
  // sequence, so results and counters are bit-identical at any lane count.
  const int slots = hexec::PlannedSlots(mt);
  dev.EnsureShards(slots);
  // Per-slot accounting on the stack: steady-state decode GEMMs must not heap-allocate
  // (docs/performance.md). kMaxSlots comfortably exceeds any PlannedSlots value.
  constexpr int kMaxSlots = 256;
  HEXLLM_CHECK(slots <= kMaxSlots);
  double dma_by_slot[kMaxSlots] = {};
  int64_t pack_by_slot[kMaxSlots] = {};
  int64_t tiles_by_slot[kMaxSlots] = {};

  hexec::ParallelFor(
      mt,
      [&](int64_t mi_begin, int64_t mi_end, int slot) {
        hexsim::NpuDevice& d = dev.ForSlot(slot);
        HmxEngine& hmx = d.hmx();
        hexsim::Tcm& tcm = d.tcm();
        hexsim::TcmFrame frame(tcm);

        // Working tiles in TCM: one A strip (kt tiles), one B strip, one output tile.
        F16* a_strip =
            reinterpret_cast<F16*>(tcm.Alloc(static_cast<int64_t>(kt) * HmxEngine::kTileBytes));
        F16* b_strip =
            reinterpret_cast<F16*>(tcm.Alloc(static_cast<int64_t>(kt) * HmxEngine::kTileBytes));
        F16* out_tile = reinterpret_cast<F16*>(tcm.Alloc(HmxEngine::kTileBytes));

        double dma_s = 0.0;
        int64_t pack_packets = 0;
        int64_t tile_ops = 0;
        float acc[HmxEngine::kTileElems];

        for (int64_t mi = mi_begin; mi < mi_end; ++mi) {
          // Rows of this strip that carry data; the rest is tile padding (zero-packed, never
          // read back).
          const int strip_rows = static_cast<int>(
              std::clamp<int64_t>(valid_m - mi * 32, 0, HmxEngine::kTileDim));
          // Pack the A row-strip into tiles (charged; skipped cost-wise if operands
          // pre-packed in TCM — Table 2's peak setup keeps activations resident and
          // pre-packed).
          for (int ki = 0; ki < kt; ++ki) {
            HmxEngine::PackTile(a + (mi * 32) * k + ki * 32, k,
                                a_strip + ki * HmxEngine::kTileElems, strip_rows);
            if (!operands_in_tcm) {
              pack_packets += 16;
            }
          }
          for (int ni = 0; ni < nt; ++ni) {
            // B tiles for output column ni: contiguous in the tile stream (column-major
            // tiles).
            const F16* b_src = b_tiles + (static_cast<int64_t>(ni) * kt) * HmxEngine::kTileElems;
            if (operands_in_tcm) {
              std::memcpy(b_strip, b_src, static_cast<size_t>(kt) * HmxEngine::kTileBytes);
            } else {
              dma_s += d.dma().Transfer1D(b_strip, b_src,
                                          static_cast<int64_t>(kt) * HmxEngine::kTileBytes,
                                          DmaDirection::kDdrToTcm);
            }
            std::fill(acc, acc + HmxEngine::kTileElems, 0.0f);
            for (int ki = 0; ki < kt; ++ki) {
              hmx.TileMacc(tcm, a_strip + ki * HmxEngine::kTileElems,
                           b_strip + ki * HmxEngine::kTileElems, acc);
              ++tile_ops;
            }
            hmx.StoreAcc(acc, out_tile, nullptr, nullptr, strip_rows);
            HmxEngine::UnpackTile(out_tile, c + (mi * 32) * n + ni * 32, n, strip_rows);
            if (!operands_in_tcm) {
              pack_packets += 4;
            }
          }
        }
        dma_by_slot[static_cast<size_t>(slot)] = dma_s;
        pack_by_slot[static_cast<size_t>(slot)] = pack_packets;
        tiles_by_slot[static_cast<size_t>(slot)] = tile_ops;
      },
      slots);
  dev.MergeShards();

  double dma_s = 0.0;
  int64_t pack_packets = 0;
  int64_t tile_ops = 0;
  for (int s = 0; s < slots; ++s) {
    dma_s += dma_by_slot[static_cast<size_t>(s)];
    pack_packets += pack_by_slot[static_cast<size_t>(s)];
    tile_ops += tiles_by_slot[static_cast<size_t>(s)];
  }

  const double hmx_s = dev.CommitHmxTileOps(tile_ops, "gemm.hmx");
  const double pack_s = dev.CommitHvxPackets(pack_packets, 1, "gemm.pack");
  // DMA overlaps with compute in a double-buffered schedule; the serial latency is the max.
  return std::max(dma_s, hmx_s + pack_s);
}

int64_t GemmF16HvxPackets(const hexsim::DeviceProfile& profile, int m, int k, int n) {
  // Per output row, per 64-wide output chunk: K iterations of
  //   vsplat(a[m,k]) + load(B row chunk) + vmpy + vadd + 1 pointer-update/stall
  // plus a qfloat convert (on <V79) and a store at the end.
  const int64_t chunks = static_cast<int64_t>(m) * hexllm::CeilDiv(n, 64);
  const int64_t qf = profile.native_ieee_fp16 ? 0 : 1;
  return chunks * (static_cast<int64_t>(k) * 5 + qf + 1);
}

double GemmF16Hvx(hexsim::NpuDevice& dev, const F16* a, const F16* b, F16* c, int m, int k,
                  int n) {
  HEXLLM_CHECK(n % 64 == 0);
  dev.ledger().AddCount("kernel.gemm_hvx.calls");
  HvxContext& ctx = dev.hvx();
  const int64_t start = ctx.packets();

  // Output rows are independent; each slot runs the legacy row loop on its shard context.
  // Per-chunk packet cost is position-independent, so the merged parent packet delta equals
  // the serial count exactly (checked below).
  const int slots = hexec::PlannedSlots(m);
  dev.EnsureShards(slots);
  hexec::ParallelFor(
      m,
      [&](int64_t mi_begin, int64_t mi_end, int slot) {
        HvxContext& sctx = dev.ForSlot(slot).hvx();
        for (int64_t mi = mi_begin; mi < mi_end; ++mi) {
          for (int nc = 0; nc < n; nc += 64) {
            HvxVec acc{};  // register clear, no packet
            for (int ki = 0; ki < k; ++ki) {
              const HvxVec av = sctx.VSplatHf(a[mi * k + ki].ToFloat());
              const HvxVec bv = sctx.LoadAligned(b + static_cast<int64_t>(ki) * n + nc);
              const HvxVec prod = sctx.VMpyHf(av, bv);
              acc = sctx.VAddHf(acc, prod);
              sctx.ChargeStalls(1);  // address update / accumulation-dependency bubble
            }
            acc = sctx.ConvertQf(acc);
            sctx.Store(c + mi * n + nc, acc);
          }
        }
      },
      slots);
  dev.MergeShards();

  const int64_t used = ctx.packets() - start;
  HEXLLM_CHECK(used == GemmF16HvxPackets(dev.profile(), m, k, n));
  return dev.CommitHvxPackets(used, 1, "gemm.hvx");
}

}  // namespace hkern

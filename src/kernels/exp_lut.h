// The precomputed exp lookup table for LUT-based Softmax (§5.2.1).
//
// Safe softmax guarantees every exp input is <= 0 (the row max is subtracted), so only the
// non-positive half of the FP16 space needs table entries: 32768 entries x 2 bytes = 64 KiB,
// exactly addressable by vgather's 16-bit byte offsets. The input transformation is pure bit
// manipulation: ignore the FP16 sign bit (inputs are negative by construction) and shift
// left by one to turn the 15-bit magnitude into a byte offset.
//
// Entries are computed in double precision at initialization (the paper notes this makes the
// LUT *more* accurate than 16-bit polynomial evaluation) and the table lives in a persistent
// 64 KiB TCM region — 0.8% of the 8 MiB TCM.
#ifndef SRC_KERNELS_EXP_LUT_H_
#define SRC_KERNELS_EXP_LUT_H_

#include <cstdint>

#include "src/base/fp16.h"
#include "src/hexsim/npu_device.h"

namespace hkern {

class ExpLut {
 public:
  static constexpr int kEntries = 32768;
  static constexpr int64_t kBytes = kEntries * 2;  // 64 KiB

  // Builds the table into a persistent TCM allocation of `device`.
  explicit ExpLut(hexsim::NpuDevice& device);

  // TCM byte offset of entry 0 (vgather base address).
  int64_t tcm_offset() const { return tcm_offset_; }

  // Byte offset of the entry for FP16 input bits `h` (h encodes a value <= 0):
  // drop the sign bit, shift left one.
  static uint16_t OffsetForInputBits(uint16_t h) {
    return static_cast<uint16_t>((h & 0x7FFF) << 1);
  }

  // Scalar reference lookup (tests, scalar paths): exp(x) for x <= 0 via the table.
  float Lookup(hexllm::F16 x) const;

  const hexllm::F16* data() const { return table_; }

 private:
  hexllm::F16* table_;
  int64_t tcm_offset_;
};

}  // namespace hkern

#endif  // SRC_KERNELS_EXP_LUT_H_

#include "src/kernels/exp_lut.h"

#include <cmath>

#include "src/base/check.h"

namespace hkern {

using hexllm::F16;

ExpLut::ExpLut(hexsim::NpuDevice& device) {
  device.ledger().AddCount("kernel.exp_lut.builds");
  uint8_t* mem = device.tcm().Alloc(kBytes, 128);
  table_ = reinterpret_cast<F16*>(mem);
  tcm_offset_ = device.tcm().OffsetOf(mem);
  for (int i = 0; i < kEntries; ++i) {
    // Entry i corresponds to input bits (0x8000 | i), i.e. the value -|decode(i)|.
    // Entry 0 is x == -0 -> exp(0) = 1.
    const double x = static_cast<double>(hexllm::F16BitsToF32(static_cast<uint16_t>(i)));
    const double e = std::exp(-x);  // computed at >= 32-bit precision (double) per §7.4
    table_[i] = F16(static_cast<float>(e));
  }
}

float ExpLut::Lookup(F16 x) const {
  const float xf = x.ToFloat();
  HEXLLM_DCHECK(!(xf > 0.0f));
  (void)xf;
  const uint16_t off = OffsetForInputBits(x.bits());
  return table_[off / 2].ToFloat();
}

}  // namespace hkern

#include "src/kernels/mixed_gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/base/check.h"
#include "src/base/math_util.h"
#include "src/exec/thread_pool.h"
#include "src/quant/codebooks.h"
#include "src/quant/group_quant.h"
#include "src/quant/tile_quant.h"

namespace hkern {

using hexllm::F16;
using hexllm::RoundToF16;
using hexsim::HvxContext;
using hexsim::HvxVec;
using hexsim::HvxVecPair;

const char* DequantKernelName(DequantKernel k) {
  switch (k) {
    case DequantKernel::kBaselineScatter:
      return "baseline (scatter)";
    case DequantKernel::kHmxLayout:
      return "HMX layout";
    case DequantKernel::kCoalescedLut:
      return "ours (coalesced + LUT)";
    case DequantKernel::kNoDequant:
      return "no dequantization";
  }
  return "?";
}

double DequantPacketsPer64(const hexsim::DeviceProfile& profile, DequantKernel k,
                           hquant::WeightScheme scheme) {
  const bool q8 = scheme == hquant::WeightScheme::kQ8_0;
  // Q4: conventional mask-unpack-convert sequence for 64 elements (2 groups): load+align(2),
  // nibble extraction(3), widen/sub(2), int->FP16 convert(1), scale splats(2), multiply(1),
  // store(1), plus 2 qfloat conversions on <V79 (Figure 9 left).
  // Q8: no nibble extraction, but two payload loads per 64 outputs.
  const double conventional =
      q8 ? (profile.native_ieee_fp16 ? 7.0 : 8.0) : (profile.native_ieee_fp16 ? 10.0 : 12.0);
  switch (k) {
    case DequantKernel::kBaselineScatter:
      // Conventional unpack + offset setup (2) + one vscatter per 64 halfwords.
      return conventional + 2.0 + static_cast<double>(profile.vgather_packets + 8);
    case DequantKernel::kHmxLayout:
      return conventional;
    case DequantKernel::kCoalescedLut:
      // Q4: 17 packets per 256-element super-block (see DequantCoalescedLut).
      // Q8: widen + scale-broadcast lut + multiply + store per 64: ~3.
      return q8 ? 3.0 : 17.0 / 4.0;
    case DequantKernel::kNoDequant:
      return 0.0;
  }
  return 0.0;
}

int64_t DequantCoalescedLut(hexsim::NpuDevice& dev, std::span<const hquant::SuperBlockQ4> sbs,
                            F16* out_tcm, hquant::Int4Codebook codebook) {
  HEXLLM_CHECK(dev.tcm().Contains(out_tcm));
  dev.ledger().AddCount("kernel.dequant_coalesced_lut.calls");
  HvxContext& ctx = dev.hvx();
  const int64_t start = ctx.packets();
  const auto levels = hquant::CodebookLevelsF16(codebook);

  // Super-blocks are independent (each writes a disjoint 256-element slice of out_tcm), so
  // they parallelize over slots; the parent packet delta after the shard merge still equals
  // the serial 17*n + 4 because the 4 hoisted-constant packets are charged on slot 0 only —
  // the other lanes replicate the constant registers chargelessly (on hardware the hoists
  // are emitted once, not per HVX thread).
  if (sbs.empty()) {
    // Hoisted constants are still emitted on an empty call, matching the serial kernel.
    ctx.VSplatB(0x0F);
    ctx.Charge(3);
    return ctx.packets() - start;
  }
  const int slots = hexec::PlannedSlots(static_cast<int64_t>(sbs.size()));
  dev.EnsureShards(slots);
  hexec::ParallelFor(
      static_cast<int64_t>(sbs.size()),
      [&](int64_t si_begin, int64_t si_end, int slot) {
        HvxContext& sctx = dev.ForSlot(slot).hvx();

        // Hoisted constants: nibble mask, the level table, and the two scale-broadcast
        // index patterns (§5.2.2's "predefined constant indices"). Swapping the codebook
        // only changes the 16 halfwords loaded into level_table — no code or cost change.
        HvxVec nib_mask{};
        if (slot == 0) {
          nib_mask = sctx.VSplatB(0x0F);
        } else {
          for (int j = 0; j < HvxVec::kBytes; ++j) {
            nib_mask.b[static_cast<size_t>(j)] = 0x0F;
          }
        }
        HvxVec level_table{};
        for (int i = 0; i < 16; ++i) {
          level_table.SetU16(i, levels[static_cast<size_t>(i)]);
        }
        HvxVec scale_idx_a{};
        HvxVec scale_idx_b{};
        for (int j = 0; j < HvxVec::kBytes; ++j) {
          scale_idx_a.b[static_cast<size_t>(j)] = static_cast<uint8_t>(j / 32);
          scale_idx_b.b[static_cast<size_t>(j)] = static_cast<uint8_t>(4 + j / 32);
        }
        if (slot == 0) {
          sctx.Charge(1);  // table load
          sctx.Charge(2);  // pattern loads
        }

        for (int64_t si = si_begin; si < si_end; ++si) {
          const hquant::SuperBlockQ4& sb = sbs[static_cast<size_t>(si)];
          HvxVec qs;
          std::memcpy(qs.b.data(), sb.qs, 128);
          sctx.Charge(1);  // payload load (128 B, exactly one register — §5.1.2)

          const HvxVec idx_lo = sctx.VAnd(qs, nib_mask);
          const HvxVec idx_hi = sctx.VAnd(sctx.VShrH(qs, 4), nib_mask);
          const HvxVecPair lev_lo = sctx.VLut16(idx_lo, level_table);  // elements 0..127
          const HvxVecPair lev_hi = sctx.VLut16(idx_hi, level_table);  // elements 128..255

          HvxVec scales_reg{};
          for (int g = 0; g < hquant::SuperBlockQ4::kGroups; ++g) {
            scales_reg.SetU16(g, sb.scales[g].bits());
          }
          sctx.Charge(1);  // scales load
          const HvxVecPair sc_a = sctx.VLut16(scale_idx_a, scales_reg);  // groups 0..3
          const HvxVecPair sc_b = sctx.VLut16(scale_idx_b, scales_reg);  // groups 4..7

          // Table outputs are IEEE FP16 bit patterns (a permute, not an FP op), so no
          // qfloat conversion is needed — the Figure 9 advantage.
          const HvxVec o0 = sctx.VMpyHf(lev_lo.lo, sc_a.lo);
          const HvxVec o1 = sctx.VMpyHf(lev_lo.hi, sc_a.hi);
          const HvxVec o2 = sctx.VMpyHf(lev_hi.lo, sc_b.lo);
          const HvxVec o3 = sctx.VMpyHf(lev_hi.hi, sc_b.hi);

          F16* out = out_tcm + si * hquant::SuperBlockQ4::kElems;
          sctx.Store(out, o0);
          sctx.Store(out + 64, o1);
          sctx.Store(out + 128, o2);
          sctx.Store(out + 192, o3);
        }
      },
      slots);
  dev.MergeShards();
  return ctx.packets() - start;
}

int64_t DequantHmxLayout(hexsim::NpuDevice& dev, std::span<const hquant::BlockQ4_0> blocks,
                         F16* out_tcm) {
  HEXLLM_CHECK(dev.tcm().Contains(out_tcm));
  HEXLLM_CHECK(blocks.size() % 2 == 0);
  dev.ledger().AddCount("kernel.dequant_hmx_layout.calls");
  HvxContext& ctx = dev.hvx();
  const int64_t start = ctx.packets();
  const int64_t per64 =
      static_cast<int64_t>(DequantPacketsPer64(dev.profile(), DequantKernel::kHmxLayout));

  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    // Conventional unpack sequence, values written contiguously (tile-group stream order
    // already matches the HMX layout). Numerics: level and scale multiply in FP16.
    const hquant::BlockQ4_0& b = blocks[bi];
    const float d = b.d.ToFloat();
    F16* out = out_tcm + bi * hquant::kGroupSize;
    for (int i = 0; i < hquant::kGroupSize; ++i) {
      const int half = hquant::kGroupSize / 2;
      const int nib = (i < half) ? (b.qs[i % half] & 0x0F) : (b.qs[i % half] >> 4);
      out[i] = F16(RoundToF16(static_cast<float>(nib - 8) * d));
    }
    if (bi % 2 == 1) {
      ctx.Charge(per64);
    }
  }
  return ctx.packets() - start;
}

int64_t DequantBaselineScatter(hexsim::NpuDevice& dev,
                               std::span<const hquant::BlockQ4_0> blocks, int64_t k_dim,
                               int64_t n_dim, F16* out_tcm) {
  HEXLLM_CHECK(dev.tcm().Contains(out_tcm));
  HEXLLM_CHECK(static_cast<int64_t>(blocks.size()) * hquant::kGroupSize == k_dim * n_dim);
  HEXLLM_CHECK(k_dim % 64 == 0);
  dev.ledger().AddCount("kernel.dequant_baseline_scatter.calls");
  HvxContext& ctx = dev.hvx();
  hexsim::Tcm& tcm = dev.tcm();
  const int64_t start = ctx.packets();
  const int64_t out_base = tcm.OffsetOf(out_tcm);
  const int64_t conv =
      static_cast<int64_t>(DequantPacketsPer64(dev.profile(), DequantKernel::kHmxLayout));

  // Conventional blocks: column-major, groups of 32 along K. Each 64-element span (2 groups
  // of one column) is unpacked then scattered to its HMX stream positions.
  const int64_t blocks_per_col = k_dim / hquant::kGroupSize;
  for (int64_t n = 0; n < n_dim; ++n) {
    for (int64_t kb = 0; kb < blocks_per_col; kb += 2) {
      const int64_t k0 = kb * hquant::kGroupSize;
      HvxVec values{};
      HvxVec offsets{};
      // The 64 destinations span exactly two 32x32 tiles; vscatter's 16-bit offsets are
      // relative to the first tile's base.
      const int64_t first_stream = hquant::KnToHmxStream(k0, n, k_dim, n_dim);
      const int64_t window_base = out_base + (first_stream / hquant::kTileElems) *
                                                 hquant::kTileElems * 2;
      for (int i = 0; i < 64; ++i) {
        const hquant::BlockQ4_0& b = blocks[static_cast<size_t>(n * blocks_per_col + kb +
                                                                i / hquant::kGroupSize)];
        const float v = hquant::BlockQ4Value(b, i % hquant::kGroupSize);
        values.SetU16(i, hexllm::F32ToF16Bits(RoundToF16(v)));
        const int64_t stream = hquant::KnToHmxStream(k0 + i, n, k_dim, n_dim);
        const int64_t off = stream * 2 - window_base + out_base;
        HEXLLM_CHECK(off >= 0 && off < 65536);
        offsets.SetU16(i, static_cast<uint16_t>(off));
      }
      ctx.Charge(conv + 2);  // unpack sequence + offset pattern setup
      ctx.VScatterH(tcm, window_base, offsets, values);
    }
  }
  return ctx.packets() - start;
}

MixedGemmCost MixedGemmCostModel(const hexsim::DeviceProfile& profile, DequantKernel k,
                                 hquant::WeightScheme scheme, int m, int k_dim, int n,
                                 int threads) {
  MixedGemmCost cost;
  const double elems = static_cast<double>(k_dim) * n;
  const double weight_bytes = elems * hquant::WeightSchemeBpw(scheme) / 8.0;

  hexsim::CycleLedger scratch;
  hexsim::DmaEngine dma(profile, scratch);
  cost.dma_s = dma.Cost1D(static_cast<int64_t>(weight_bytes), hexsim::DmaDirection::kDdrToTcm);

  const double hz = profile.hvx_freq_ghz * 1e9;
  const double packets = elems / 64.0 * DequantPacketsPer64(profile, k, scheme);
  cost.hvx_busy_s = packets / hz;
  cost.hvx_latency_s = cost.hvx_busy_s / std::max(1, threads);

  if (k != DequantKernel::kNoDequant) {
    hexsim::HmxEngine hmx(profile);
    const int64_t tile_ops = static_cast<int64_t>(hexllm::CeilDiv(m, 32)) *
                             hexllm::CeilDiv(k_dim, 32) * hexllm::CeilDiv(n, 32);
    cost.hmx_s = hmx.TileOpsToSeconds(tile_ops);
    // Activation pack + output unpack on HVX.
    const double oh_packets = static_cast<double>(m) * k_dim / 1024.0 * 16.0 +
                              static_cast<double>(m) * n / 1024.0 * 4.0;
    cost.overhead_s = oh_packets / hz;
  }

  // Double-buffered schedule: weight DMA, HVX dequantization, and HMX consumption all
  // overlap strip-by-strip; the slowest stage is the pipeline bottleneck.
  cost.total_s =
      std::max({cost.dma_s, cost.hvx_latency_s, cost.hmx_s}) + cost.overhead_s;
  return cost;
}

}  // namespace hkern

// Safe softmax on the HVX unit, with three interchangeable exp implementations (§5.2.1 and
// the Figure 14 ablation):
//
//   kF32Poly — conventional 32-bit float exp: widen FP16 lanes to FP32, evaluate
//              exp2(x*log2e) with floor/frac splitting and a degree-5 polynomial, assemble
//              2^k through the IEEE exponent field, narrow back. Half the lanes per register
//              and a long serial dependency chain (the paper's ILP complaint).
//   kF16Poly — same structure directly on 64 FP16 lanes with a degree-4 polynomial.
//   kLut     — the paper's technique: mask the sign bit, shift left 1, vgather from the
//              64 KiB exp table in TCM. One long-latency gather replaces the whole chain.
//
// Gather-port contention: when several rows are processed by concurrently-running HVX
// threads, their vgathers contend on the TCM banks; effective gather cost grows mildly with
// the number of in-flight rows. This models the paper's observation that a larger input
// query reduces the LUT speedup at short context lengths (§7.4).
#ifndef SRC_KERNELS_SOFTMAX_H_
#define SRC_KERNELS_SOFTMAX_H_

#include <cstdint>

#include "src/base/fp16.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/exp_lut.h"

namespace hkern {

enum class SoftmaxVariant : uint8_t {
  kF32Poly,
  kF16Poly,
  kLut,
};

const char* SoftmaxVariantName(SoftmaxVariant v);

// exp(x) for a register of non-positive FP16 lanes. `parallel_rows` is the number of rows
// being processed concurrently (gather contention; ignored by the polynomial variants).
// `lut` may be null for the polynomial variants.
hexsim::HvxVec ExpNonPosF16(hexsim::NpuDevice& dev, SoftmaxVariant v, const ExpLut* lut,
                            const hexsim::HvxVec& x, int parallel_rows);

// In-place row-wise safe softmax over an FP16 matrix s[rows x cols] resident in TCM.
// cols must be a multiple of 64. Row sums are accumulated in FP32 (Algorithm 1). Packet
// costs are charged to the device ledger under tag "softmax".
void SoftmaxRowsF16(hexsim::NpuDevice& dev, SoftmaxVariant v, const ExpLut* lut,
                    hexllm::F16* s, int rows, int cols);

// Analytic packet-cost model for one softmax call (validated against the emulated kernel in
// tests; used by the timing-mode engine).
int64_t SoftmaxPacketCost(const hexsim::DeviceProfile& profile, SoftmaxVariant v, int rows,
                          int cols);

// Packet cost of exp alone for one 64-lane register (exposed for the cost model and tests).
int64_t ExpRegPacketCost(const hexsim::DeviceProfile& profile, SoftmaxVariant v,
                         int parallel_rows);

}  // namespace hkern

#endif  // SRC_KERNELS_SOFTMAX_H_

// FP16 FlashAttention on the simulated Hexagon NPU (Algorithm 1) plus a conventional FP32
// reference implementation.
//
// Structure of the NPU kernel (per attention head):
//   * Q is processed in 32-row tiles (the HMX tile height); KV in chunks of 128 (4 tiles).
//   * S = (Q * K^T) * scale runs on HMX with FP32 accumulation ("attn.qk").
//   * Online safe softmax runs on HVX: running row-max m, running row-sum l (FP32
//     accumulation), P = exp(S - m) through one of the three exp variants ("attn.softmax").
//   * O_new = diag(exp(m_prev - m_new)) * O + P * V: the P*V product on HMX ("attn.pv"),
//     the rescale/accumulate sweep on HVX ("attn.rescale").
//   * Tile packing into the Figure 4a layout is charged under "attn.pack"; DMA under "dma".
//
// The tags drive the Figure 8 latency breakdown. All matrices are FP16 with FP32 accumulation
// exactly where Algorithm 1 says (MatMul accumulators and the row-sum).
#ifndef SRC_KERNELS_ATTENTION_H_
#define SRC_KERNELS_ATTENTION_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/base/fp16.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/exp_lut.h"
#include "src/kernels/softmax.h"
#include "src/quant/quant_types.h"

namespace hkern {

inline constexpr int kAttnQTile = 32;    // HMX tile height
inline constexpr int kAttnKvChunk = 128; // KV positions per online-softmax step (4 tiles)

// Sliding-window attention with attention sinks (docs/long_context.md): a query at
// absolute position qa attends the first `sink_blocks` blocks (the attention-sink prefix
// that anchors softmax mass), the trailing `window_blocks` blocks ending at its own block,
// and nothing in between. Block-aligned on the KV-cache block size so masked interior
// blocks become whole-block eviction candidates for the tiered KV offload.
//
// window_blocks <= 0 disables the window (plain causal attention). A window that covers
// the whole KV range (CoversAll) is normalized away at the kernel entry points, so the
// full-coverage configuration takes the exact legacy code path — charges and outputs stay
// bit-identical to unwindowed attention, the invariant the CI gate checks.
struct AttnWindowSpec {
  int sink_blocks = 0;
  int window_blocks = 0;
  int block_tokens = 32;  // must match the paged KV cache's block size

  bool enabled() const { return window_blocks > 0; }
  int sink_tokens() const { return sink_blocks * block_tokens; }
  // First KV position the query at absolute position qa may attend outside the sinks: the
  // window is the `window_blocks` whole blocks ending at qa's own block.
  int WindowStart(int qa) const {
    const int start = (qa / block_tokens - window_blocks + 1) * block_tokens;
    return start > 0 ? start : 0;
  }
  // True when position `p` is masked for the query at absolute position `qa`.
  bool Masked(int p, int qa) const {
    return p >= sink_tokens() && p < WindowStart(qa);
  }
  // True when KV chunk [kv0, kv0 + n) is masked for EVERY query row at absolute positions
  // >= qa0 (the masked interior only grows with qa, so the first row decides).
  bool ChunkFullyMasked(int kv0, int n, int qa0) const {
    return kv0 >= sink_tokens() && kv0 + n <= WindowStart(qa0);
  }
  // True when no position in [0, kv_len) is masked for any query up to qa_max — the
  // full-coverage case that must degrade to legacy causal attention.
  bool CoversAll(int qa_max) const { return WindowStart(qa_max) <= sink_tokens(); }
  // Resident tokens a window keeps attendable regardless of context length (sinks + window
  // + the partially-filled current block) — what admission math prices.
  int ResidentTokens() const { return (sink_blocks + window_blocks + 1) * block_tokens; }
};

// Builds an AttnWindowSpec from HEXLLM_ATTN_SINK_BLOCKS / HEXLLM_ATTN_WINDOW_BLOCKS
// (window disabled when the window var is unset or <= 0), overriding `spec`.
AttnWindowSpec AttnWindowFromEnv(AttnWindowSpec spec = AttnWindowSpec());

// Appends to `out` the KV-cache table-block indices a windowed FlashAttention call over
// [0, kv_len) with `q_len` query rows at base position `q_pos_offset` (< 0: rows aligned
// to the end of kv, the decode convention) will actually stage — chunk-granular, matching
// FlashAttentionCore's causal and window chunk-skip logic exactly. The serving layer
// faults exactly these blocks resident before the kernel runs; everything else is
// evictable. `window` may be null (plain causal attention stages every block up to the
// causal frontier).
void AppendAttendedBlocks(const AttnWindowSpec* window, int q_len, int kv_len,
                          int q_pos_offset, int block_tokens, std::vector<int>* out);

// Runs one head of FP16 FlashAttention. q: [q_len, head_dim], k/v: [kv_len, head_dim],
// o: [q_len, head_dim], all row-major FP16 in (simulated) DDR. head_dim must be a multiple
// of 32. `scale` is the 1/sqrt(d) factor (with log2 e absorbed upstream when the polynomial
// exp2 variants are used — here variants all compute natural exp, so scale is just
// 1/sqrt(d)).
//
// Causal masking (chunked prefill): when q_pos_offset >= 0, query row i attends only to KV
// positions <= q_pos_offset + i (masked scores become -inf and exp to 0; fully-masked KV
// chunks are skipped, which also halves the average cost — the standard causal-prefill
// saving). q_pos_offset < 0 disables masking (pure cross-attention over the whole KV).
void FlashAttentionF16(hexsim::NpuDevice& dev, const ExpLut& lut, SoftmaxVariant exp_variant,
                       const hexllm::F16* q, const hexllm::F16* k, const hexllm::F16* v,
                       hexllm::F16* o, int q_len, int kv_len, int head_dim, float scale,
                       int q_pos_offset = -1);

// One attention head's view of a paged KV cache (hkv::PagedKvCache), consumed in place —
// no per-step gather of K/V into contiguous scratch. k_blocks/v_blocks[i] point at the
// position-0 K / V row of table block i for the owning (layer, sequence); KV position j
// lives at blocks[j / block_tokens] + (j % block_tokens) * row_stride + head_offset.
// `head_offset` selects the head's columns inside the packed kv_dim row, so GQA query
// heads sharing one KV head use the same view with the same offset — rows are never
// duplicated. Block staging into TCM charges the DMA engine exactly like the contiguous
// kernel (hexsim::DmaEngine::Cost2D depends only on row bytes / rows / direction), so
// counters are bit-identical to the gather path (docs/performance.md).
struct PagedKvHeadView {
  const hexllm::F16* const* k_blocks = nullptr;
  const hexllm::F16* const* v_blocks = nullptr;
  int block_tokens = 0;
  int64_t row_stride = 0;  // F16 elements between consecutive positions in a block
  int64_t head_offset = 0; // F16 elements from the row start to this head's columns
};

// FlashAttentionF16 over a paged KV view. q rows are strided by `q_stride` elements
// (q row r = q + r * q_stride, first head_dim columns), o rows by `o_stride` — so the
// kernel reads/writes head columns of the transformer's packed activations directly.
// Same math, same charging as the contiguous kernel.
// `window`, when non-null and enabled, applies sliding-window + attention-sink masking on
// top of the causal mask: fully-masked KV chunks are skipped (never staged, never charged)
// and partially-masked chunks get -inf scores like the causal mask. A window covering the
// whole KV range is normalized away, taking the exact legacy path (bit-identical charges
// and outputs). When q_pos_offset < 0 the query rows are treated as ending at kv_len (the
// decode convention) for window purposes.
void FlashAttentionPagedF16(hexsim::NpuDevice& dev, const ExpLut& lut,
                            SoftmaxVariant exp_variant, const hexllm::F16* q,
                            int64_t q_stride, const PagedKvHeadView& kv, hexllm::F16* o,
                            int64_t o_stride, int q_len, int kv_len, int head_dim,
                            float scale, int q_pos_offset = -1,
                            const AttnWindowSpec* window = nullptr);

// One attention head's view of a low-bit quantized paged KV cache
// (hkv::PagedKvCache with KvDtype kInt8/kInt4; docs/kv_quantization.md). Blocks store
// group-quantized rows — payload bytes then one F16 scale per `group` elements — and the
// kernel dequantizes each head's slice through the vlut16 table-lookup path while staging
// into TCM, so DMA is charged the *quantized* row bytes (the whole point: 1.9-3.6x less KV
// traffic). KV position j's row starts at blocks[j / block_tokens] +
// (j % block_tokens) * row_bytes; this head's payload is at +payload_offset and its scales
// at +scales_offset. `group` must divide head_dim so head slices stay group-aligned.
struct PagedQKvHeadView {
  const uint8_t* const* k_blocks = nullptr;
  const uint8_t* const* v_blocks = nullptr;
  int block_tokens = 0;
  int64_t row_bytes = 0;       // bytes between consecutive positions in a block
  int64_t payload_offset = 0;  // bytes from row start to this head's quantized payload
  int64_t scales_offset = 0;   // bytes from row start to this head's first F16 group scale
  int group = 0;               // elements per quantization group
  hquant::KvDtype dtype = hquant::KvDtype::kInt4;
};

// FlashAttention over a quantized paged KV view: same Algorithm 1 core and math as
// FlashAttentionPagedF16, but K/V blocks are dequantized inside the staging step (per the
// LUT-GEMM idiom: nibble extract + VLut16 level/scale lookups, committed under the
// "attn.kv_dequant" ledger tag) and the DMA ledger is charged the quantized bytes only.
// Numerics match PagedKvCache::ReadKeyRow/ReadValueRow exactly — the attention output
// deviates from the F16 kernel only by the KV round-trip quantization error.
void FlashAttentionPagedQ(hexsim::NpuDevice& dev, const ExpLut& lut,
                          SoftmaxVariant exp_variant, const hexllm::F16* q, int64_t q_stride,
                          const PagedQKvHeadView& kv, hexllm::F16* o, int64_t o_stride,
                          int q_len, int kv_len, int head_dim, float scale,
                          int q_pos_offset = -1, const AttnWindowSpec* window = nullptr);

// Runs `heads` independent attention heads, parallelized across hexec slots with one shard
// device (and one exp LUT resident in that shard's TCM) per slot. `slot_luts[s]` must be
// built in dev.ForSlot(s)'s TCM — slot_luts.size() caps the lane count, so passing a
// single-entry span degrades to the serial per-head loop. For each head the kernel calls
// `gather(head, k_dst, v_dst, q_dst)` on the owning slot's thread to fill contiguous
// [kv_len x head_dim] K/V and [q_len x head_dim] Q host buffers, runs FlashAttentionF16 on
// the slot device, and scatters the head's output rows to attn_out[r * out_stride +
// head * head_dim]. Shard accounting is merged before returning, so the parent device's
// counters match the serial loop exactly; outputs are bit-identical at any lane count.
void FlashAttentionHeadsF16(
    hexsim::NpuDevice& dev, std::span<const ExpLut* const> slot_luts,
    SoftmaxVariant exp_variant, int heads,
    const std::function<void(int head, hexllm::F16* k_dst, hexllm::F16* v_dst,
                             hexllm::F16* q_dst)>& gather,
    hexllm::F16* attn_out, int out_stride, int q_len, int kv_len, int head_dim, float scale,
    int q_pos_offset = -1);

// Conventional full-precision attention (the Table 5 baseline): FP32 throughout, full S
// matrix materialized. Pure host math — used as the numeric reference.
void AttentionF32Reference(const float* q, const float* k, const float* v, float* o,
                           int q_len, int kv_len, int head_dim, float scale);

// Analytic per-head cost model of FlashAttentionF16 (validated against emulation in tests;
// consumed by the timing-mode engine). Seconds by component.
struct AttentionCost {
  double hmx_qk_s = 0.0;
  double hmx_pv_s = 0.0;
  double hvx_softmax_s = 0.0;   // single-thread busy seconds
  double hvx_rescale_s = 0.0;
  double hvx_pack_s = 0.0;
  double dma_s = 0.0;

  double HvxBusySeconds() const { return hvx_softmax_s + hvx_rescale_s + hvx_pack_s; }
  double TotalSerialSeconds() const {
    return hmx_qk_s + hmx_pv_s + HvxBusySeconds() + dma_s;
  }
};

AttentionCost FlashAttentionCost(const hexsim::DeviceProfile& profile,
                                 SoftmaxVariant exp_variant, int q_len, int kv_len,
                                 int head_dim);

}  // namespace hkern

#endif  // SRC_KERNELS_ATTENTION_H_

// Mixed-precision (W4A16 / W8A16) GEMM: runtime dequantization on HVX feeding FP16 HMX.
//
// Four dequantization kernels implement the Figure 15 ablation:
//
//   kBaselineScatter — conventional column-major quantization groups. Each group is
//       unpacked with the mask-unpack-convert sequence and its 32 FP16 values are
//       *scattered* to their HMX-layout positions in TCM with vscatter. This is the
//       straw-man a naive port produces, and the scatters dominate.
//   kHmxLayout       — tile-group quantization (§5.1.1): the stream order already matches
//       the HMX layout, so dequantized registers store contiguously. Still unpacks
//       group-by-group with the conventional instruction sequence (half-filled registers,
//       qfloat conversions).
//   kCoalescedLut    — the paper's full scheme (§5.1.2 + §5.2.2): 256-element super-blocks
//       fill one HVX register; two vlut16 ops convert all nibbles to FP16 levels; two more
//       vlut16 ops broadcast the 8 group scales (4 per lookup); four multiplies and stores
//       finish. No unpack chain, no qfloat conversion (table outputs are IEEE bits).
//   kNoDequant       — upper bound: quantized bytes are DMA-copied on-chip with no compute.
//
// Functional kernels produce real FP16 values (tested against the reference dequantizers);
// cost models are exact transcriptions of the emulated packet counts.
#ifndef SRC_KERNELS_MIXED_GEMM_H_
#define SRC_KERNELS_MIXED_GEMM_H_

#include <cstdint>
#include <span>

#include "src/base/fp16.h"
#include "src/hexsim/npu_device.h"
#include "src/quant/codebooks.h"
#include "src/quant/quant_types.h"

namespace hkern {

enum class DequantKernel : uint8_t {
  kBaselineScatter,
  kHmxLayout,
  kCoalescedLut,
  kNoDequant,
};

const char* DequantKernelName(DequantKernel k);

// Packet cost per 64 dequantized elements for the given weight scheme. Q8_0 skips the
// nibble unpacking (cheaper per element) but moves ~1.9x the bytes.
double DequantPacketsPer64(const hexsim::DeviceProfile& profile, DequantKernel k,
                           hquant::WeightScheme scheme = hquant::WeightScheme::kQ4_0);

// --- functional emulated kernels (Q4) ---

// Ours: super-blocks (HMX stream order) -> contiguous FP16 stream in TCM.
// Returns HVX packets charged. `codebook` selects the 16-entry dequantization table
// (§5.2.2: supporting FP4 / NF4 / IQ4_NL is "simply adjusting the table contents" — the
// instruction sequence and cost are identical for every codebook).
int64_t DequantCoalescedLut(hexsim::NpuDevice& dev, std::span<const hquant::SuperBlockQ4> sbs,
                            hexllm::F16* out_tcm,
                            hquant::Int4Codebook codebook = hquant::Int4Codebook::kQ4_0);

// Tile-group blocks (HMX stream order), conventional unpack, contiguous stores.
int64_t DequantHmxLayout(hexsim::NpuDevice& dev, std::span<const hquant::BlockQ4_0> blocks,
                         hexllm::F16* out_tcm);

// Conventional column-major blocks of a [K, N] matrix, scattered into the HMX stream
// positions of out_tcm (which must hold k_dim * n_dim halfwords in TCM).
int64_t DequantBaselineScatter(hexsim::NpuDevice& dev,
                               std::span<const hquant::BlockQ4_0> blocks, int64_t k_dim,
                               int64_t n_dim, hexllm::F16* out_tcm);

// --- GEMM-level cost model (drives Figure 15 and the decode engine) ---

struct MixedGemmCost {
  double dma_s = 0.0;        // weight fetch
  double hvx_busy_s = 0.0;   // dequant work (single-thread busy)
  double hvx_latency_s = 0.0; // dequant latency across the threads used
  double hmx_s = 0.0;        // matrix compute
  double overhead_s = 0.0;   // activation pack / output unpack
  double total_s = 0.0;      // max(dma, dequant latency) + hmx + overhead
};

// Cost of Y[M,N] = X[M,K] x W[K,N] with W quantized under `scheme` and dequantized by
// kernel `k` using `threads` HVX threads. kNoDequant models the fetch-only upper bound.
MixedGemmCost MixedGemmCostModel(const hexsim::DeviceProfile& profile, DequantKernel k,
                                 hquant::WeightScheme scheme, int m, int k_dim, int n,
                                 int threads);

}  // namespace hkern

#endif  // SRC_KERNELS_MIXED_GEMM_H_

#include "src/quant/codebooks.h"

#include <cmath>

#include "src/base/check.h"

namespace hquant {

const char* Int4CodebookName(Int4Codebook cb) {
  switch (cb) {
    case Int4Codebook::kQ4_0:
      return "Q4_0";
    case Int4Codebook::kNf4:
      return "NF4";
    case Int4Codebook::kFp4:
      return "FP4";
    case Int4Codebook::kIq4Nl:
      return "IQ4_NL";
  }
  return "?";
}

std::array<float, 16> CodebookLevels(Int4Codebook cb) {
  switch (cb) {
    case Int4Codebook::kQ4_0: {
      std::array<float, 16> v{};
      for (int i = 0; i < 16; ++i) {
        v[static_cast<size_t>(i)] = static_cast<float>(i - 8);
      }
      return v;
    }
    case Int4Codebook::kNf4:
      // QLoRA (Dettmers et al. 2023) NormalFloat4 quantile levels.
      return {-1.0f, -0.6961928009986877f, -0.5250730514526367f, -0.39491748809814453f,
              -0.28444138169288635f, -0.18477343022823334f, -0.09105003625154495f, 0.0f,
              0.07958029955625534f, 0.16093020141124725f, 0.24611230194568634f,
              0.33791524171829224f, 0.44070982933044434f, 0.5626170039176941f,
              0.7229568362236023f, 1.0f};
    case Int4Codebook::kFp4:
      // e2m1: codes 0..7 positive, 8..15 negative mirror.
      return {0.0f, 0.5f, 1.0f, 1.5f, 2.0f, 3.0f, 4.0f, 6.0f,
              -0.0f, -0.5f, -1.0f, -1.5f, -2.0f, -3.0f, -4.0f, -6.0f};
    case Int4Codebook::kIq4Nl:
      // llama.cpp kvalues_iq4nl.
      return {-127.0f, -104.0f, -83.0f, -65.0f, -49.0f, -35.0f, -22.0f, -10.0f,
              1.0f, 13.0f, 25.0f, 38.0f, 53.0f, 69.0f, 89.0f, 113.0f};
  }
  HEXLLM_CHECK_MSG(false, "unknown codebook");
}

std::array<uint16_t, 16> CodebookLevelsF16(Int4Codebook cb) {
  const std::array<float, 16> levels = CodebookLevels(cb);
  std::array<uint16_t, 16> bits{};
  for (size_t i = 0; i < 16; ++i) {
    bits[i] = hexllm::F32ToF16Bits(levels[i]);
  }
  return bits;
}

int EncodeToCodebook(Int4Codebook cb, float normalized_value) {
  const std::array<float, 16> levels = CodebookLevels(cb);
  int best = 0;
  float best_d = std::fabs(normalized_value - levels[0]);
  for (int i = 1; i < 16; ++i) {
    const float d = std::fabs(normalized_value - levels[static_cast<size_t>(i)]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace hquant

// Group quantizers (Q4_0 / Q8_0) and the QNN-style per-channel INT4 baseline.
//
// Weight-matrix convention across the project: W has shape [K, N] — K the input (reduction)
// dimension, N the output dimension — stored column-major (each output channel's K weights
// are contiguous), matching the layout llama.cpp uses for CPU dot-product kernels (§5.1.1).
// "Conventional" grouping cuts each column into contiguous groups of 32 along K.
#ifndef SRC_QUANT_GROUP_QUANT_H_
#define SRC_QUANT_GROUP_QUANT_H_

#include <span>
#include <vector>

#include "src/quant/quant_types.h"

namespace hquant {

// --- flat group quantization (layout-agnostic: operates on a linear element stream) ---

// Quantizes `values` (size divisible by 32) into Q4_0 blocks with round-to-nearest.
// Scale selection follows llama.cpp: d = (element of max magnitude) / -8, so the full
// [-8, 7] integer range is reachable.
std::vector<BlockQ4_0> QuantizeQ4_0(std::span<const float> values);

// Quantizes into Q8_0 blocks (d = amax / 127).
std::vector<BlockQ8_0> QuantizeQ8_0(std::span<const float> values);

// Reference dequantizers (exact inverse of the storage semantics; FP16 scale applied in
// FP32, result NOT re-rounded to FP16 — kernels decide their own output precision).
void DequantizeQ4_0(std::span<const BlockQ4_0> blocks, std::span<float> out);
void DequantizeQ8_0(std::span<const BlockQ8_0> blocks, std::span<float> out);

// Value of element `i` within a block (for tests / scalar paths).
float BlockQ4Value(const BlockQ4_0& b, int i);

// --- per-channel INT4 (the QNN-style coarse baseline of Table 1) ---

struct PerChannelInt4 {
  int64_t k = 0;  // reduction dim (elements per channel)
  int64_t n = 0;  // channels
  std::vector<float> scales;  // one per channel
  std::vector<uint8_t> qs;    // nibble-packed per channel: ceil(k/2) bytes * n
};

// Quantizes a [K, N] column-major weight matrix with one symmetric INT4 scale per output
// channel (column). This is the coarse-grained scheme mobile NPUs support natively (§3.3).
PerChannelInt4 QuantizePerChannelInt4(std::span<const float> w_col_major, int64_t k, int64_t n);

void DequantizePerChannelInt4(const PerChannelInt4& q, std::span<float> out_col_major);

}  // namespace hquant

#endif  // SRC_QUANT_GROUP_QUANT_H_

#include "src/quant/tile_quant.h"

#include "src/base/check.h"
#include "src/quant/group_quant.h"
#include "src/hexsim/hmx.h"

namespace hquant {
namespace {

void CheckDims(int64_t k_dim, int64_t n_dim) {
  HEXLLM_CHECK_MSG(k_dim % kTileDim == 0 && n_dim % kTileDim == 0,
                   "tile quantization requires K and N to be multiples of 32");
}

}  // namespace

KnIndex HmxStreamToKn(int64_t stream_index, int64_t k_dim, int64_t n_dim) {
  CheckDims(k_dim, n_dim);
  const int64_t k_tiles = k_dim / kTileDim;
  const int64_t tile = stream_index / kTileElems;
  const int h = static_cast<int>(stream_index % kTileElems);
  const int64_t tc = tile / k_tiles;  // output-dim tile (tiles are column-major, Fig 4b)
  const int64_t tk = tile % k_tiles;
  // Invert HmxEngine::TileHalfwordOffset: h = (r/2)*64 + c*2 + r%2.
  const int p = h / (2 * kTileDim);
  const int c = (h % (2 * kTileDim)) / 2;
  const int s = h % 2;
  const int r = 2 * p + s;
  return {tk * kTileDim + r, tc * kTileDim + c};
}

int64_t KnToHmxStream(int64_t k, int64_t n, int64_t k_dim, int64_t n_dim) {
  CheckDims(k_dim, n_dim);
  const int64_t k_tiles = k_dim / kTileDim;
  const int64_t tk = k / kTileDim;
  const int64_t tc = n / kTileDim;
  const int r = static_cast<int>(k % kTileDim);
  const int c = static_cast<int>(n % kTileDim);
  const int64_t tile = tc * k_tiles + tk;
  return tile * kTileElems + hexsim::HmxEngine::TileHalfwordOffset(r, c);
}

std::vector<float> PermuteToHmxOrder(std::span<const float> w, int64_t k_dim, int64_t n_dim) {
  CheckDims(k_dim, n_dim);
  HEXLLM_CHECK(static_cast<int64_t>(w.size()) == k_dim * n_dim);
  std::vector<float> out(w.size());
  for (int64_t i = 0; i < static_cast<int64_t>(w.size()); ++i) {
    const KnIndex kn = HmxStreamToKn(i, k_dim, n_dim);
    out[static_cast<size_t>(i)] = w[static_cast<size_t>(kn.n * k_dim + kn.k)];
  }
  return out;
}

std::vector<float> UnpermuteFromHmxOrder(std::span<const float> stream, int64_t k_dim,
                                         int64_t n_dim) {
  CheckDims(k_dim, n_dim);
  HEXLLM_CHECK(static_cast<int64_t>(stream.size()) == k_dim * n_dim);
  std::vector<float> out(stream.size());
  for (int64_t i = 0; i < static_cast<int64_t>(stream.size()); ++i) {
    const KnIndex kn = HmxStreamToKn(i, k_dim, n_dim);
    out[static_cast<size_t>(kn.n * k_dim + kn.k)] = stream[static_cast<size_t>(i)];
  }
  return out;
}

std::vector<BlockQ4_0> TileGroupQuantizeQ4(std::span<const float> w, int64_t k_dim,
                                           int64_t n_dim) {
  const std::vector<float> stream = PermuteToHmxOrder(w, k_dim, n_dim);
  return QuantizeQ4_0(stream);
}

std::vector<BlockQ4_0> ConventionalGroupQuantizeQ4(std::span<const float> w, int64_t k_dim,
                                                   int64_t n_dim) {
  HEXLLM_CHECK(static_cast<int64_t>(w.size()) == k_dim * n_dim);
  HEXLLM_CHECK(k_dim % kGroupSize == 0);
  // Column-major storage means the whole matrix is already one linear stream of contiguous
  // K-groups.
  return QuantizeQ4_0(w);
}

std::vector<float> DequantizeTileGroupQ4(std::span<const BlockQ4_0> blocks, int64_t k_dim,
                                         int64_t n_dim) {
  std::vector<float> stream(blocks.size() * kGroupSize);
  DequantizeQ4_0(blocks, stream);
  return UnpermuteFromHmxOrder(stream, k_dim, n_dim);
}

std::vector<float> DequantizeConventionalQ4(std::span<const BlockQ4_0> blocks, int64_t k_dim,
                                            int64_t n_dim) {
  std::vector<float> out(blocks.size() * kGroupSize);
  HEXLLM_CHECK(static_cast<int64_t>(out.size()) == k_dim * n_dim);
  DequantizeQ4_0(blocks, out);
  return out;
}

std::vector<SuperBlockQ4> CoalesceSuperblocks(std::span<const BlockQ4_0> blocks) {
  HEXLLM_CHECK(blocks.size() % SuperBlockQ4::kGroups == 0);
  std::vector<SuperBlockQ4> sbs(blocks.size() / SuperBlockQ4::kGroups);
  for (size_t si = 0; si < sbs.size(); ++si) {
    SuperBlockQ4& sb = sbs[si];
    const BlockQ4_0* group = blocks.data() + si * SuperBlockQ4::kGroups;
    for (int g = 0; g < SuperBlockQ4::kGroups; ++g) {
      sb.scales[g] = group[g].d;
    }
    // Extract the 256 nibble codes in element order, then repack for HVX consumption.
    uint8_t codes[SuperBlockQ4::kElems];
    for (int j = 0; j < SuperBlockQ4::kElems; ++j) {
      const int g = j / kGroupSize;
      const int e = j % kGroupSize;
      const uint8_t byte = group[g].qs[e % (kGroupSize / 2)];
      codes[j] = (e < kGroupSize / 2) ? (byte & 0x0F) : (byte >> 4);
    }
    for (int i = 0; i < 128; ++i) {
      sb.qs[i] = static_cast<uint8_t>(codes[i] | (codes[128 + i] << 4));
    }
  }
  return sbs;
}

int SuperBlockNibble(const SuperBlockQ4& sb, int j) {
  HEXLLM_DCHECK(j >= 0 && j < SuperBlockQ4::kElems);
  return (j < 128) ? (sb.qs[j] & 0x0F) : (sb.qs[j - 128] >> 4);
}

void DequantizeSuperblocks(std::span<const SuperBlockQ4> sbs, std::span<float> out) {
  HEXLLM_CHECK(out.size() == sbs.size() * SuperBlockQ4::kElems);
  for (size_t si = 0; si < sbs.size(); ++si) {
    float* o = out.data() + si * SuperBlockQ4::kElems;
    for (int j = 0; j < SuperBlockQ4::kElems; ++j) {
      const float d = sbs[si].scales[j / kGroupSize].ToFloat();
      o[j] = static_cast<float>(SuperBlockNibble(sbs[si], j) - 8) * d;
    }
  }
}

}  // namespace hquant

// Codebook super-block quantization: the generalization §5.2.2 promises — "this LUT-centric
// design can easily support different 4-bit encoding schemes (e.g. FP4, NF4, IQ4_NL) simply
// by adjusting the table contents".
//
// The storage layout is byte-identical to SuperBlockQ4 (128 B of nibble indices + 8 FP16
// scales); only the meaning of a nibble changes:
//   kQ4_0   : value = (code - 8) * d,        d = signed-max / -8
//   kNf4    : value = nf4_level[code] * d,   d = group absmax   (levels in [-1, 1])
//   kFp4    : value = e2m1[code] * d,        d = absmax / 6
//   kIq4Nl  : value = iq4nl[code] * d,       d = absmax / 127   (levels in int8 domain)
// The runtime dequantization kernel is the SAME vlut16 instruction sequence for all of them
// (see hkern::DequantCoalescedLut's codebook parameter) — identical cost, different table.
#ifndef SRC_QUANT_CODEBOOK_QUANT_H_
#define SRC_QUANT_CODEBOOK_QUANT_H_

#include <span>
#include <vector>

#include "src/quant/codebooks.h"
#include "src/quant/quant_types.h"

namespace hquant {

// Group scale for `cb` given the group's values (see table above).
float CodebookGroupScale(Int4Codebook cb, std::span<const float> group);

// Quantizes a flat stream (size % 256 == 0) into super-blocks under codebook `cb`.
// For kQ4_0 this produces bit-identical output to CoalesceSuperblocks(QuantizeQ4_0(...)).
std::vector<SuperBlockQ4> CodebookQuantizeSuperblocks(std::span<const float> values,
                                                      Int4Codebook cb);

// Reference dequantization under codebook `cb`.
void CodebookDequantizeSuperblocks(std::span<const SuperBlockQ4> sbs, Int4Codebook cb,
                                   std::span<float> out);

}  // namespace hquant

#endif  // SRC_QUANT_CODEBOOK_QUANT_H_

// Synthetic LLM-like weight matrices (the substitution for real checkpoints).
//
// Two properties of real transformer weights drive every quantization result in the paper:
//   1. the bulk of each matrix is approximately zero-mean Gaussian (§5.1.1 relies on this to
//      argue tile-shaped groups match column-shaped groups statistically);
//   2. a small fraction of *input dimensions* carry systematic outliers roughly an order of
//      magnitude larger, consistently across output channels (the documented cause of
//      coarse-quantization collapse, Table 1; see the "systematic outliers" literature the
//      paper cites [27, 33, 35]). A per-output-channel scale must stretch to cover these few
//      huge weights, crushing the resolution of everything else in the channel; groups of 32
//      along K quarantine each outlier dimension into a handful of groups.
//
// GenerateLlmLikeMatrix produces exactly that: N(0, sigma^2) entries with `outlier_dim_frac`
// of the K input dimensions scaled by a heavy factor, plus sporadic single-element spikes.
#ifndef SRC_QUANT_SYNTHETIC_WEIGHTS_H_
#define SRC_QUANT_SYNTHETIC_WEIGHTS_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"

namespace hquant {

struct WeightGenOptions {
  double sigma = 0.02;            // std-dev of the Gaussian bulk
  double outlier_dim_frac = 0.003; // fraction of input dims (K) with systematic outliers
  double outlier_dim_scale = 12.0; // magnitude multiplier for those dims
  double spike_frac = 2e-4;       // per-element spike probability
  double spike_scale = 25.0;      // spike magnitude multiplier
};

// Generates a [K, N] column-major weight matrix with LLM-like statistics.
std::vector<float> GenerateLlmLikeMatrix(int64_t k_dim, int64_t n_dim, hexllm::Rng& rng,
                                         const WeightGenOptions& opts = {});

// Generates a plain Gaussian matrix (no outliers) — the idealized case in which per-channel
// and per-group quantization perform similarly.
std::vector<float> GenerateGaussianMatrix(int64_t k_dim, int64_t n_dim, hexllm::Rng& rng,
                                          double sigma = 0.02);

}  // namespace hquant

#endif  // SRC_QUANT_SYNTHETIC_WEIGHTS_H_

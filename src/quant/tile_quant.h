// Hardware-aware tile quantization (§5.1) — the paper's first key technique.
//
// Conventional group quantization cuts each weight column into contiguous groups of 32 along
// the reduction dimension. On the HMX unit that layout scatters each group across the tile
// memory (Figure 6), forcing expensive gather/scatter in the dequantizing GEMM kernel.
//
// The tile scheme instead:
//   1. permutes the [K, N] weight matrix into the exact layout the HMX unit consumes —
//      column-major 32x32 tiles, each with Figure 4a's two-row interleave — BEFORE
//      quantization ("pre-quantization transformation");
//   2. applies round-to-nearest group quantization on 32 *consecutive* elements of the
//      permuted stream, which correspond to 2x16 rectangular tiles of the original matrix;
//   3. post-quantization, coalesces 8 groups into a 256-element super-block whose INT4
//      payload fills one full 128-byte HVX register (§5.1.2, Figure 7).
//
// At runtime the dequantized FP16 output streams contiguously into TCM in exactly the order
// HMX reads it — no scatter, no layout fixup.
#ifndef SRC_QUANT_TILE_QUANT_H_
#define SRC_QUANT_TILE_QUANT_H_

#include <span>
#include <vector>

#include "src/quant/quant_types.h"

namespace hquant {

inline constexpr int kTileDim = 32;
inline constexpr int kTileElems = kTileDim * kTileDim;

// Maps a linear index of the HMX-permuted stream back to (k, n) of the [K, N] matrix.
// The permuted stream enumerates weight tiles column-major (all K-tiles of output-tile 0,
// then output-tile 1, ...) and elements within a tile in Figure 4a order.
struct KnIndex {
  int64_t k;
  int64_t n;
};
KnIndex HmxStreamToKn(int64_t stream_index, int64_t k_dim, int64_t n_dim);

// Inverse: position of element (k, n) in the HMX-permuted stream.
int64_t KnToHmxStream(int64_t k, int64_t n, int64_t k_dim, int64_t n_dim);

// Permutes a column-major [K, N] matrix into HMX stream order (the offline
// "pre-quantization transformation"). K and N must be multiples of 32.
std::vector<float> PermuteToHmxOrder(std::span<const float> w_col_major, int64_t k_dim,
                                     int64_t n_dim);

// Inverse permutation (used by tests and by the accuracy-evaluation path).
std::vector<float> UnpermuteFromHmxOrder(std::span<const float> stream, int64_t k_dim,
                                         int64_t n_dim);

// Tile-group quantization: permute + Q4_0 RTN over the permuted stream. Blocks are stored in
// stream order; block i covers permuted elements [32*i, 32*i + 32).
std::vector<BlockQ4_0> TileGroupQuantizeQ4(std::span<const float> w_col_major, int64_t k_dim,
                                           int64_t n_dim);

// Conventional grouping for comparison: Q4_0 over each column's contiguous K-groups
// (llama.cpp CPU layout). Blocks ordered column by column.
std::vector<BlockQ4_0> ConventionalGroupQuantizeQ4(std::span<const float> w_col_major,
                                                   int64_t k_dim, int64_t n_dim);

// Reconstructs the full [K, N] column-major matrix from tile-group blocks (dequantize stream,
// unpermute).
std::vector<float> DequantizeTileGroupQ4(std::span<const BlockQ4_0> blocks, int64_t k_dim,
                                         int64_t n_dim);

// Reconstructs from conventional blocks.
std::vector<float> DequantizeConventionalQ4(std::span<const BlockQ4_0> blocks, int64_t k_dim,
                                            int64_t n_dim);

// --- super-block coalescing (§5.1.2) ---

// Repacks 8 consecutive Q4_0 blocks into one SuperBlockQ4. blocks.size() must be a multiple
// of 8. Payload layout: byte i = element i (low nibble) | element 128+i (high nibble).
std::vector<SuperBlockQ4> CoalesceSuperblocks(std::span<const BlockQ4_0> blocks);

// Integer code (0..15) of element j (0..255) in a super-block.
int SuperBlockNibble(const SuperBlockQ4& sb, int j);

// Reference dequantization of super-blocks into a flat stream.
void DequantizeSuperblocks(std::span<const SuperBlockQ4> sbs, std::span<float> out);

}  // namespace hquant

#endif  // SRC_QUANT_TILE_QUANT_H_

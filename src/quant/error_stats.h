// Quantization error statistics. The relative RMS error (RMS of the reconstruction error
// normalized by the RMS of the original weights) is the quantity the capability model in
// src/tts consumes: all accuracy contrasts in Tables 1/4/5 are driven by values *measured*
// here, not hard-coded.
#ifndef SRC_QUANT_ERROR_STATS_H_
#define SRC_QUANT_ERROR_STATS_H_

#include <span>

namespace hquant {

struct ErrorStats {
  double mse = 0.0;        // mean squared error
  double rel_rms = 0.0;    // rms(error) / rms(reference)
  double max_abs = 0.0;    // worst-case absolute error
  double cosine = 1.0;     // cosine similarity between reference and reconstruction
};

ErrorStats ComputeErrorStats(std::span<const float> reference,
                             std::span<const float> reconstruction);

}  // namespace hquant

#endif  // SRC_QUANT_ERROR_STATS_H_

#include "src/quant/synthetic_weights.h"

namespace hquant {

std::vector<float> GenerateLlmLikeMatrix(int64_t k_dim, int64_t n_dim, hexllm::Rng& rng,
                                         const WeightGenOptions& opts) {
  // Mark the systematic-outlier input dimensions once: they are shared across all output
  // channels, as observed in real transformers.
  std::vector<double> dim_scale(static_cast<size_t>(k_dim), 1.0);
  for (int64_t i = 0; i < k_dim; ++i) {
    if (rng.NextBool(opts.outlier_dim_frac)) {
      dim_scale[static_cast<size_t>(i)] = opts.outlier_dim_scale * (0.75 + 0.5 * rng.NextDouble());
    }
  }
  std::vector<float> w(static_cast<size_t>(k_dim * n_dim));
  for (int64_t c = 0; c < n_dim; ++c) {
    float* col = w.data() + c * k_dim;
    for (int64_t i = 0; i < k_dim; ++i) {
      double v = rng.NextGaussian() * opts.sigma * dim_scale[static_cast<size_t>(i)];
      if (rng.NextBool(opts.spike_frac)) {
        v *= opts.spike_scale;
      }
      col[i] = static_cast<float>(v);
    }
  }
  return w;
}

std::vector<float> GenerateGaussianMatrix(int64_t k_dim, int64_t n_dim, hexllm::Rng& rng,
                                          double sigma) {
  std::vector<float> w(static_cast<size_t>(k_dim * n_dim));
  for (auto& v : w) {
    v = static_cast<float>(rng.NextGaussian() * sigma);
  }
  return w;
}

}  // namespace hquant

// 16-entry dequantization codebooks for the vlut16-based INT4 -> FP16 conversion (§5.2.2).
//
// The LUT-centric design's selling point is that supporting a different 4-bit encoding is
// just a different table: Q4_0's affine [-8..7] grid, NF4 (QLoRA's normal-float levels), FP4
// (e2m1 mini-float), and IQ4_NL (llama.cpp's non-linear INT4 grid) all dequantize with the
// identical instruction sequence.
#ifndef SRC_QUANT_CODEBOOKS_H_
#define SRC_QUANT_CODEBOOKS_H_

#include <array>
#include <span>

#include "src/base/fp16.h"

namespace hquant {

enum class Int4Codebook : uint8_t {
  kQ4_0,    // code - 8, scaled by the group scale
  kNf4,     // QLoRA normal-float-4 levels in [-1, 1], scaled by group absmax
  kFp4,     // e2m1: {0, .5, 1, 1.5, 2, 3, 4, 6} with sign bit
  kIq4Nl,   // llama.cpp non-linear INT4 grid (int8-scaled domain)
};

const char* Int4CodebookName(Int4Codebook cb);

// Returns the 16 dequantization levels for `cb` as FP32 (index = 4-bit code).
std::array<float, 16> CodebookLevels(Int4Codebook cb);

// Same levels converted to FP16 bit patterns, ready to splat into a vlut16 table register.
std::array<uint16_t, 16> CodebookLevelsF16(Int4Codebook cb);

// Nearest-level encoder for `cb` (used to quantize against non-uniform codebooks).
int EncodeToCodebook(Int4Codebook cb, float normalized_value);

}  // namespace hquant

#endif  // SRC_QUANT_CODEBOOKS_H_

#include "src/quant/error_stats.h"

#include <cmath>

#include "src/base/check.h"

namespace hquant {

ErrorStats ComputeErrorStats(std::span<const float> reference,
                             std::span<const float> reconstruction) {
  HEXLLM_CHECK(reference.size() == reconstruction.size());
  HEXLLM_CHECK(!reference.empty());
  double se = 0.0;
  double ref_sq = 0.0;
  double rec_sq = 0.0;
  double dot = 0.0;
  double max_abs = 0.0;
  for (size_t i = 0; i < reference.size(); ++i) {
    const double r = reference[i];
    const double q = reconstruction[i];
    const double e = q - r;
    se += e * e;
    ref_sq += r * r;
    rec_sq += q * q;
    dot += r * q;
    max_abs = std::max(max_abs, std::fabs(e));
  }
  ErrorStats s;
  const double n = static_cast<double>(reference.size());
  s.mse = se / n;
  s.rel_rms = (ref_sq > 0.0) ? std::sqrt(se / ref_sq) : 0.0;
  s.max_abs = max_abs;
  const double denom = std::sqrt(ref_sq) * std::sqrt(rec_sq);
  s.cosine = (denom > 0.0) ? dot / denom : 1.0;
  return s;
}

}  // namespace hquant

// Quantization block formats.
//
// The storage layouts follow llama.cpp conventions (the system is built as a llama.cpp NPU
// backend, §6): Q4_0 stores a group of 32 weights as one FP16 scale plus 16 nibble-packed
// bytes; Q8_0 stores one FP16 scale plus 32 int8 values. Blocks interleave payload and scale
// (AoS) because NPU prefetch prefers one contiguous stream over two (§5.1.2).
#ifndef SRC_QUANT_QUANT_TYPES_H_
#define SRC_QUANT_QUANT_TYPES_H_

#include <cstdint>

#include "src/base/fp16.h"

namespace hquant {

inline constexpr int kGroupSize = 32;  // elements per quantization group

enum class WeightScheme : uint8_t {
  kF16,             // unquantized half weights
  kQ4_0,            // 4-bit symmetric groups of 32 (4.5 bits/weight)
  kQ8_0,            // 8-bit symmetric groups of 32 (8.5 bits/weight)
  kPerChannelInt4,  // QNN-style: one scale per output channel (coarse-grained)
};

const char* WeightSchemeName(WeightScheme s);

// Bits per weight including scale overhead.
double WeightSchemeBpw(WeightScheme s);

// One Q4_0 group: 32 weights. value(i) = (nibble(i) - 8) * d.
// Nibble packing: byte j holds element j in the low nibble and element j+16 in the high
// nibble (llama.cpp block_q4_0 layout).
struct BlockQ4_0 {
  hexllm::F16 d;
  uint8_t qs[kGroupSize / 2];
};
static_assert(sizeof(BlockQ4_0) == 18, "Q4_0 block is 18 bytes");

// One Q8_0 group: 32 weights. value(i) = qs[i] * d.
struct BlockQ8_0 {
  hexllm::F16 d;
  int8_t qs[kGroupSize];
};
static_assert(sizeof(BlockQ8_0) == 34, "Q8_0 block is 34 bytes");

// Super-block produced by coalescing 8 Q4_0 groups (256 elements) so that the INT4 payload
// fills exactly one 128-byte HVX register (§5.1.2, Figure 7).
//
// Payload nibble layout: byte i holds element i in the low nibble and element 128+i in the
// high nibble. A single vand/vshr pair therefore yields two full index registers covering
// elements 0..127 and 128..255 in order — no cross-register merging.
// Scales: 8 FP16 scales, one per original group of 32 consecutive elements.
struct SuperBlockQ4 {
  static constexpr int kElems = 256;
  static constexpr int kGroups = 8;
  uint8_t qs[128];
  hexllm::F16 scales[kGroups];
};
static_assert(sizeof(SuperBlockQ4) == 144, "super-block is 144 bytes");

}  // namespace hquant

#endif  // SRC_QUANT_QUANT_TYPES_H_

// Quantization block formats.
//
// The storage layouts follow llama.cpp conventions (the system is built as a llama.cpp NPU
// backend, §6): Q4_0 stores a group of 32 weights as one FP16 scale plus 16 nibble-packed
// bytes; Q8_0 stores one FP16 scale plus 32 int8 values. Blocks interleave payload and scale
// (AoS) because NPU prefetch prefers one contiguous stream over two (§5.1.2).
#ifndef SRC_QUANT_QUANT_TYPES_H_
#define SRC_QUANT_QUANT_TYPES_H_

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "src/base/fp16.h"
#include "src/base/math_util.h"

namespace hquant {

inline constexpr int kGroupSize = 32;  // elements per quantization group

enum class WeightScheme : uint8_t {
  kF16,             // unquantized half weights
  kQ4_0,            // 4-bit symmetric groups of 32 (4.5 bits/weight)
  kQ8_0,            // 8-bit symmetric groups of 32 (8.5 bits/weight)
  kPerChannelInt4,  // QNN-style: one scale per output channel (coarse-grained)
};

const char* WeightSchemeName(WeightScheme s);

// Bits per weight including scale overhead.
double WeightSchemeBpw(WeightScheme s);

// One Q4_0 group: 32 weights. value(i) = (nibble(i) - 8) * d.
// Nibble packing: byte j holds element j in the low nibble and element j+16 in the high
// nibble (llama.cpp block_q4_0 layout).
struct BlockQ4_0 {
  hexllm::F16 d;
  uint8_t qs[kGroupSize / 2];
};
static_assert(sizeof(BlockQ4_0) == 18, "Q4_0 block is 18 bytes");

// One Q8_0 group: 32 weights. value(i) = qs[i] * d.
struct BlockQ8_0 {
  hexllm::F16 d;
  int8_t qs[kGroupSize];
};
static_assert(sizeof(BlockQ8_0) == 34, "Q8_0 block is 34 bytes");

// Super-block produced by coalescing 8 Q4_0 groups (256 elements) so that the INT4 payload
// fills exactly one 128-byte HVX register (§5.1.2, Figure 7).
//
// Payload nibble layout: byte i holds element i in the low nibble and element 128+i in the
// high nibble. A single vand/vshr pair therefore yields two full index registers covering
// elements 0..127 and 128..255 in order — no cross-register merging.
// Scales: 8 FP16 scales, one per original group of 32 consecutive elements.
struct SuperBlockQ4 {
  static constexpr int kElems = 256;
  static constexpr int kGroups = 8;
  uint8_t qs[128];
  hexllm::F16 scales[kGroups];
};
static_assert(sizeof(SuperBlockQ4) == 144, "super-block is 144 bytes");

// ---------------------------------------------------------------------------------------
// Paged KV cache element types (docs/kv_quantization.md).
//
// The KV cache reuses the weight-side group-quantization rules (Q4_0 / Q8_0 scale
// derivation above) but with a row-oriented layout: one K or V row of `kv_dim` elements is
// stored as a contiguous payload followed by one F16 scale per `group` consecutive
// elements. INT4 payloads pack pairwise — byte j holds element 2j in the low nibble and
// element 2j+1 in the high nibble — unlike BlockQ4_0's j/j+16 split, so a row slices
// cleanly at any group boundary (per-kv-head attention views need group-aligned slices).
//
// These helpers are header-only on purpose: src/kvcache links neither hexllm_quant nor
// hexllm_kernels, and the writer (PagedKvCache) and reader (FlashAttentionPagedQ) must
// share bit-exact numerics.
// ---------------------------------------------------------------------------------------

enum class KvDtype : uint8_t {
  kF16,   // unquantized half rows — the default; byte-identical to the pre-quant layout
  kInt8,  // Q8_0-style: int8 payload + one F16 scale per group (~1.9x smaller than F16)
  kInt4,  // Q4_0-style: nibble payload + one F16 scale per group (~3.6x smaller than F16)
};

inline const char* KvDtypeName(KvDtype d) {
  switch (d) {
    case KvDtype::kF16:
      return "f16";
    case KvDtype::kInt8:
      return "int8";
    case KvDtype::kInt4:
      return "int4";
  }
  return "?";
}

inline int KvDtypeBits(KvDtype d) {
  switch (d) {
    case KvDtype::kF16:
      return 16;
    case KvDtype::kInt8:
      return 8;
    case KvDtype::kInt4:
      return 4;
  }
  return 16;
}

// Payload bytes for `elems` quantized elements (elems must be group-aligned for kInt4).
inline int64_t KvPayloadBytes(KvDtype d, int64_t elems) {
  switch (d) {
    case KvDtype::kF16:
      return elems * 2;
    case KvDtype::kInt8:
      return elems;
    case KvDtype::kInt4:
      return elems / 2;
  }
  return elems * 2;
}

// Bytes of one K (or V) row of `row_elems` elements: payload, then one F16 scale per
// quantization group. F16 rows carry no scales and keep the legacy 2-bytes/element layout.
inline int64_t KvRowBytes(KvDtype d, int64_t row_elems, int group) {
  if (d == KvDtype::kF16) {
    return row_elems * 2;
  }
  return KvPayloadBytes(d, row_elems) + (row_elems / group) * 2;
}

// Escape hatch: HEXLLM_KV_DTYPE=f16|int8|int4 overrides the configured KV dtype (e.g. to
// force a quantized deployment back to F16 when chasing an accuracy regression). Unset or
// unrecognized values keep `configured`.
inline KvDtype KvDtypeFromEnv(KvDtype configured) {
  const char* s = std::getenv("HEXLLM_KV_DTYPE");
  if (s == nullptr || *s == '\0') {
    return configured;
  }
  if (std::strcmp(s, "f16") == 0) {
    return KvDtype::kF16;
  }
  if (std::strcmp(s, "int8") == 0) {
    return KvDtype::kInt8;
  }
  if (std::strcmp(s, "int4") == 0) {
    return KvDtype::kInt4;
  }
  return configured;
}

// Quantizes `group` consecutive floats into an INT4 KV payload group, returning the F16
// scale. Scale rule mirrors QuantizeQ4_0 (group_quant.cc): d = signed-max / -8.
inline hexllm::F16 KvQuantizeGroupInt4(const float* x, int group, uint8_t* payload) {
  float amax = 0.0f;
  float vmax = 0.0f;  // signed value of the max-magnitude element
  for (int i = 0; i < group; ++i) {
    const float a = std::fabs(x[i]);
    if (a > amax) {
      amax = a;
      vmax = x[i];
    }
  }
  const float d = vmax / -8.0f;
  const float id = (d != 0.0f) ? 1.0f / d : 0.0f;
  for (int j = 0; j < group / 2; ++j) {
    const int q_lo = hexllm::Clamp(static_cast<int>(std::lrintf(x[2 * j] * id)) + 8, 0, 15);
    const int q_hi =
        hexllm::Clamp(static_cast<int>(std::lrintf(x[2 * j + 1] * id)) + 8, 0, 15);
    payload[j] = static_cast<uint8_t>(q_lo | (q_hi << 4));
  }
  return hexllm::F16(d);
}

// Quantizes `group` consecutive floats into an INT8 KV payload group, returning the F16
// scale. Scale rule mirrors QuantizeQ8_0 (group_quant.cc): d = amax / 127.
inline hexllm::F16 KvQuantizeGroupInt8(const float* x, int group, int8_t* payload) {
  float amax = 0.0f;
  for (int i = 0; i < group; ++i) {
    amax = std::max(amax, std::fabs(x[i]));
  }
  const float d = amax / 127.0f;
  const float id = (d != 0.0f) ? 1.0f / d : 0.0f;
  for (int i = 0; i < group; ++i) {
    payload[i] = static_cast<int8_t>(
        hexllm::Clamp(static_cast<int>(std::lrintf(x[i] * id)), -127, 127));
  }
  return hexllm::F16(d);
}

// Dequantizes one INT4 KV group into F16 (the attention kernels stage K/V as F16 tiles).
// value(i) = F16((nibble(i) - 8) * d) — the multiply happens in float and rounds through
// FP16 once, matching what the HVX vlut16 scale-multiply produces.
inline void KvDequantGroupInt4(const uint8_t* payload, float d, int group, hexllm::F16* out) {
  for (int j = 0; j < group / 2; ++j) {
    const uint8_t byte = payload[j];
    out[2 * j] = hexllm::F16(static_cast<float>((byte & 0x0F) - 8) * d);
    out[2 * j + 1] = hexllm::F16(static_cast<float>((byte >> 4) - 8) * d);
  }
}

// Dequantizes one INT8 KV group into F16. value(i) = F16(qs[i] * d).
inline void KvDequantGroupInt8(const int8_t* payload, float d, int group, hexllm::F16* out) {
  for (int i = 0; i < group; ++i) {
    out[i] = hexllm::F16(static_cast<float>(payload[i]) * d);
  }
}

}  // namespace hquant

#endif  // SRC_QUANT_QUANT_TYPES_H_

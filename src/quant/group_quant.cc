#include "src/quant/group_quant.h"

#include <cmath>

#include "src/base/check.h"
#include "src/base/math_util.h"

namespace hquant {

using hexllm::F16;

const char* WeightSchemeName(WeightScheme s) {
  switch (s) {
    case WeightScheme::kF16:
      return "F16";
    case WeightScheme::kQ4_0:
      return "Q4_0";
    case WeightScheme::kQ8_0:
      return "Q8_0";
    case WeightScheme::kPerChannelInt4:
      return "per-channel INT4";
  }
  return "?";
}

double WeightSchemeBpw(WeightScheme s) {
  switch (s) {
    case WeightScheme::kF16:
      return 16.0;
    case WeightScheme::kQ4_0:
      return 4.5;  // 16 bytes payload + 2 bytes scale per 32 weights
    case WeightScheme::kQ8_0:
      return 8.5;
    case WeightScheme::kPerChannelInt4:
      return 4.0;  // scale overhead amortized over a whole channel
  }
  return 0.0;
}

std::vector<BlockQ4_0> QuantizeQ4_0(std::span<const float> values) {
  HEXLLM_CHECK(values.size() % kGroupSize == 0);
  const size_t n_blocks = values.size() / kGroupSize;
  std::vector<BlockQ4_0> blocks(n_blocks);
  for (size_t bi = 0; bi < n_blocks; ++bi) {
    const float* x = values.data() + bi * kGroupSize;
    float amax = 0.0f;
    float vmax = 0.0f;  // signed value of the max-magnitude element
    for (int i = 0; i < kGroupSize; ++i) {
      const float a = std::fabs(x[i]);
      if (a > amax) {
        amax = a;
        vmax = x[i];
      }
    }
    const float d = vmax / -8.0f;
    const float id = (d != 0.0f) ? 1.0f / d : 0.0f;
    BlockQ4_0& b = blocks[bi];
    b.d = F16(d);
    for (int j = 0; j < kGroupSize / 2; ++j) {
      const int q_lo = hexllm::Clamp(static_cast<int>(std::lrintf(x[j] * id)) + 8, 0, 15);
      const int q_hi =
          hexllm::Clamp(static_cast<int>(std::lrintf(x[j + kGroupSize / 2] * id)) + 8, 0, 15);
      b.qs[j] = static_cast<uint8_t>(q_lo | (q_hi << 4));
    }
  }
  return blocks;
}

std::vector<BlockQ8_0> QuantizeQ8_0(std::span<const float> values) {
  HEXLLM_CHECK(values.size() % kGroupSize == 0);
  const size_t n_blocks = values.size() / kGroupSize;
  std::vector<BlockQ8_0> blocks(n_blocks);
  for (size_t bi = 0; bi < n_blocks; ++bi) {
    const float* x = values.data() + bi * kGroupSize;
    float amax = 0.0f;
    for (int i = 0; i < kGroupSize; ++i) {
      amax = std::max(amax, std::fabs(x[i]));
    }
    const float d = amax / 127.0f;
    const float id = (d != 0.0f) ? 1.0f / d : 0.0f;
    BlockQ8_0& b = blocks[bi];
    b.d = F16(d);
    for (int i = 0; i < kGroupSize; ++i) {
      b.qs[i] = static_cast<int8_t>(
          hexllm::Clamp(static_cast<int>(std::lrintf(x[i] * id)), -127, 127));
    }
  }
  return blocks;
}

float BlockQ4Value(const BlockQ4_0& b, int i) {
  HEXLLM_DCHECK(i >= 0 && i < kGroupSize);
  const int half = kGroupSize / 2;
  const uint8_t byte = b.qs[i % half];
  const int nib = (i < half) ? (byte & 0x0F) : (byte >> 4);
  return static_cast<float>(nib - 8) * b.d.ToFloat();
}

void DequantizeQ4_0(std::span<const BlockQ4_0> blocks, std::span<float> out) {
  HEXLLM_CHECK(out.size() == blocks.size() * kGroupSize);
  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    float* o = out.data() + bi * kGroupSize;
    for (int i = 0; i < kGroupSize; ++i) {
      o[i] = BlockQ4Value(blocks[bi], i);
    }
  }
}

void DequantizeQ8_0(std::span<const BlockQ8_0> blocks, std::span<float> out) {
  HEXLLM_CHECK(out.size() == blocks.size() * kGroupSize);
  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    const float d = blocks[bi].d.ToFloat();
    float* o = out.data() + bi * kGroupSize;
    for (int i = 0; i < kGroupSize; ++i) {
      o[i] = static_cast<float>(blocks[bi].qs[i]) * d;
    }
  }
}

PerChannelInt4 QuantizePerChannelInt4(std::span<const float> w, int64_t k, int64_t n) {
  HEXLLM_CHECK(static_cast<int64_t>(w.size()) == k * n);
  PerChannelInt4 q;
  q.k = k;
  q.n = n;
  q.scales.resize(static_cast<size_t>(n));
  const int64_t bytes_per_channel = hexllm::CeilDiv(k, 2);
  q.qs.assign(static_cast<size_t>(bytes_per_channel * n), 0);
  for (int64_t c = 0; c < n; ++c) {
    const float* col = w.data() + c * k;
    float amax = 0.0f;
    float vmax = 0.0f;
    for (int64_t i = 0; i < k; ++i) {
      const float a = std::fabs(col[i]);
      if (a > amax) {
        amax = a;
        vmax = col[i];
      }
    }
    const float d = vmax / -8.0f;
    const float id = (d != 0.0f) ? 1.0f / d : 0.0f;
    q.scales[static_cast<size_t>(c)] = d;
    uint8_t* qs = q.qs.data() + c * bytes_per_channel;
    for (int64_t i = 0; i < k; ++i) {
      const int v = hexllm::Clamp(static_cast<int>(std::lrintf(col[i] * id)) + 8, 0, 15);
      if (i % 2 == 0) {
        qs[i / 2] = static_cast<uint8_t>(v);
      } else {
        qs[i / 2] |= static_cast<uint8_t>(v << 4);
      }
    }
  }
  return q;
}

void DequantizePerChannelInt4(const PerChannelInt4& q, std::span<float> out) {
  HEXLLM_CHECK(static_cast<int64_t>(out.size()) == q.k * q.n);
  const int64_t bytes_per_channel = hexllm::CeilDiv(q.k, 2);
  for (int64_t c = 0; c < q.n; ++c) {
    const float d = q.scales[static_cast<size_t>(c)];
    const uint8_t* qs = q.qs.data() + c * bytes_per_channel;
    float* col = out.data() + c * q.k;
    for (int64_t i = 0; i < q.k; ++i) {
      const int nib = (i % 2 == 0) ? (qs[i / 2] & 0x0F) : (qs[i / 2] >> 4);
      col[i] = static_cast<float>(nib - 8) * d;
    }
  }
}

}  // namespace hquant

#include "src/quant/awq.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"
#include "src/quant/group_quant.h"

namespace hquant {

std::vector<float> CalibrationActScales(std::span<const float> acts, int64_t samples,
                                        int64_t k) {
  HEXLLM_CHECK(static_cast<int64_t>(acts.size()) == samples * k);
  HEXLLM_CHECK(samples > 0);
  std::vector<float> scale(static_cast<size_t>(k), 0.0f);
  for (int64_t s = 0; s < samples; ++s) {
    for (int64_t i = 0; i < k; ++i) {
      scale[static_cast<size_t>(i)] += std::fabs(acts[static_cast<size_t>(s * k + i)]);
    }
  }
  for (auto& v : scale) {
    v /= static_cast<float>(samples);
  }
  return scale;
}

AwqQuantized AwqQuantize(std::span<const float> w, int64_t k, int64_t n,
                         std::span<const float> act_scale, double alpha) {
  HEXLLM_CHECK(static_cast<int64_t>(w.size()) == k * n);
  HEXLLM_CHECK(static_cast<int64_t>(act_scale.size()) == k);
  AwqQuantized q;
  q.k = k;
  q.n = n;
  // s_k = (E|a_k| / median)^alpha. Median normalization keeps the typical dimension
  // unscaled even when a few outlier dims dominate the mean.
  std::vector<float> sorted(act_scale.begin(), act_scale.end());
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<long>(sorted.size() / 2),
                   sorted.end());
  const double median = std::max(1e-20, static_cast<double>(sorted[sorted.size() / 2]));
  q.scales.resize(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    const double rel = std::max(1e-6, act_scale[static_cast<size_t>(i)] / median);
    q.scales[static_cast<size_t>(i)] = static_cast<float>(std::pow(rel, alpha));
  }
  // Scale, then conventional column-major group quantization.
  std::vector<float> scaled(w.size());
  for (int64_t c = 0; c < n; ++c) {
    for (int64_t i = 0; i < k; ++i) {
      scaled[static_cast<size_t>(c * k + i)] =
          w[static_cast<size_t>(c * k + i)] * q.scales[static_cast<size_t>(i)];
    }
  }
  q.blocks = QuantizeQ4_0(scaled);
  return q;
}

std::vector<float> AwqDequantize(const AwqQuantized& q) {
  std::vector<float> rec(static_cast<size_t>(q.k * q.n));
  DequantizeQ4_0(q.blocks, rec);
  for (int64_t c = 0; c < q.n; ++c) {
    for (int64_t i = 0; i < q.k; ++i) {
      rec[static_cast<size_t>(c * q.k + i)] /= q.scales[static_cast<size_t>(i)];
    }
  }
  return rec;
}

double OutputMse(std::span<const float> w_ref, std::span<const float> w_rec, int64_t k,
                 int64_t n, std::span<const float> acts, int64_t samples) {
  HEXLLM_CHECK(w_ref.size() == w_rec.size());
  HEXLLM_CHECK(static_cast<int64_t>(acts.size()) == samples * k);
  double se = 0.0;
  for (int64_t s = 0; s < samples; ++s) {
    const float* a = acts.data() + s * k;
    for (int64_t c = 0; c < n; ++c) {
      double y_ref = 0.0;
      double y_rec = 0.0;
      const float* col_ref = w_ref.data() + c * k;
      const float* col_rec = w_rec.data() + c * k;
      for (int64_t i = 0; i < k; ++i) {
        y_ref += static_cast<double>(a[i]) * col_ref[i];
        y_rec += static_cast<double>(a[i]) * col_rec[i];
      }
      se += (y_ref - y_rec) * (y_ref - y_rec);
    }
  }
  return se / (static_cast<double>(samples) * n);
}

}  // namespace hquant

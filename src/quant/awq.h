// AWQ-style activation-aware weight scaling (Lin et al., the "AutoAWQ" of Table 1).
//
// Weight-only group quantization treats every weight equally, but the output error of
// y = W^T a is dominated by the weights multiplying large activations. AWQ scales the
// salient input dimensions up before quantization (w'_{k,n} = w_{k,n} * s_k with
// s_k = act_scale_k^alpha) and folds the inverse scaling into the activations (in practice
// into the preceding normalization layer), so the quantization grid spends its resolution
// where the output cares.
//
// This is the algorithm behind the paper's strongest W4 baseline; combined with the
// tile-group layout it is fully compatible with the NPU pipeline (the scaling is an offline
// transform, the storage format is unchanged).
#ifndef SRC_QUANT_AWQ_H_
#define SRC_QUANT_AWQ_H_

#include <span>
#include <vector>

#include "src/quant/quant_types.h"

namespace hquant {

struct AwqQuantized {
  std::vector<float> scales;          // per input-dim s_k (activations divide by these)
  std::vector<BlockQ4_0> blocks;      // group-quantized scaled weights, column-major groups
  int64_t k = 0;
  int64_t n = 0;
};

// Per-input-dim activation magnitudes (E|a_k|) estimated from calibration activations
// [samples x k] (row-major).
std::vector<float> CalibrationActScales(std::span<const float> acts, int64_t samples,
                                        int64_t k);

// Quantizes a [K, N] column-major matrix with AWQ scaling at the given alpha (0 = plain
// group quantization; ~0.5 is the paper-typical protection strength).
AwqQuantized AwqQuantize(std::span<const float> w_col_major, int64_t k, int64_t n,
                         std::span<const float> act_scale, double alpha);

// Reconstructs the ORIGINAL (unscaled) [K, N] matrix from the AWQ blocks.
std::vector<float> AwqDequantize(const AwqQuantized& q);

// Mean squared error of the layer OUTPUT y = W^T a over calibration activations — the
// quantity AWQ actually optimizes (plain weight MSE can go UP while this goes down).
double OutputMse(std::span<const float> w_ref, std::span<const float> w_rec, int64_t k,
                 int64_t n, std::span<const float> acts, int64_t samples);

}  // namespace hquant

#endif  // SRC_QUANT_AWQ_H_

#include "src/quant/codebook_quant.h"

#include <cmath>

#include "src/base/check.h"
#include "src/quant/tile_quant.h"

namespace hquant {

float CodebookGroupScale(Int4Codebook cb, std::span<const float> group) {
  float amax = 0.0f;
  float vmax = 0.0f;
  for (const float x : group) {
    if (std::fabs(x) > amax) {
      amax = std::fabs(x);
      vmax = x;
    }
  }
  switch (cb) {
    case Int4Codebook::kQ4_0:
      return vmax / -8.0f;
    case Int4Codebook::kNf4:
      return amax;  // levels span [-1, 1]
    case Int4Codebook::kFp4:
      return amax / 6.0f;  // largest e2m1 magnitude
    case Int4Codebook::kIq4Nl:
      return amax / 127.0f;  // levels in the int8 domain
  }
  return 0.0f;
}

std::vector<SuperBlockQ4> CodebookQuantizeSuperblocks(std::span<const float> values,
                                                      Int4Codebook cb) {
  HEXLLM_CHECK(values.size() % SuperBlockQ4::kElems == 0);
  const size_t n_sbs = values.size() / SuperBlockQ4::kElems;
  std::vector<SuperBlockQ4> sbs(n_sbs);
  for (size_t si = 0; si < n_sbs; ++si) {
    SuperBlockQ4& sb = sbs[si];
    const float* base = values.data() + si * SuperBlockQ4::kElems;
    uint8_t codes[SuperBlockQ4::kElems];
    for (int g = 0; g < SuperBlockQ4::kGroups; ++g) {
      const std::span<const float> group{base + g * kGroupSize,
                                         static_cast<size_t>(kGroupSize)};
      const float d = CodebookGroupScale(cb, group);
      sb.scales[g] = hexllm::F16(d);
      const float id = (d != 0.0f) ? 1.0f / d : 0.0f;
      for (int i = 0; i < kGroupSize; ++i) {
        codes[g * kGroupSize + i] =
            static_cast<uint8_t>(EncodeToCodebook(cb, group[static_cast<size_t>(i)] * id));
      }
    }
    for (int i = 0; i < 128; ++i) {
      sb.qs[i] = static_cast<uint8_t>(codes[i] | (codes[128 + i] << 4));
    }
  }
  return sbs;
}

void CodebookDequantizeSuperblocks(std::span<const SuperBlockQ4> sbs, Int4Codebook cb,
                                   std::span<float> out) {
  HEXLLM_CHECK(out.size() == sbs.size() * SuperBlockQ4::kElems);
  const auto levels = CodebookLevels(cb);
  for (size_t si = 0; si < sbs.size(); ++si) {
    float* o = out.data() + si * SuperBlockQ4::kElems;
    for (int j = 0; j < SuperBlockQ4::kElems; ++j) {
      const float d = sbs[si].scales[j / kGroupSize].ToFloat();
      o[j] = levels[static_cast<size_t>(SuperBlockNibble(sbs[si], j))] * d;
    }
  }
}

}  // namespace hquant

// Legacy scheduler entry points (declared in src/runtime/scheduler.h), implemented here as
// thin wrappers over the serving runtime so every schedule — old API or new — runs through
// the one ContinuousBatcher code path.
//
// Mapping: each SampleJob becomes a ServeJob in its own prompt_group with the legacy fixed
// `context` parameter as an uncharged starting context (the old API had no prompts, so no
// prefill is charged) — but where the original priced every step at that fixed context,
// slots now grow their context per decoded token and steps are priced at the batch's actual
// mean context.
#include <vector>

#include "src/base/check.h"
#include "src/runtime/scheduler.h"
#include "src/serving/continuous_batcher.h"

namespace hrt {

namespace {

ScheduleResult RunLegacy(const std::vector<SampleJob>& jobs, int max_batch,
                         const Engine& engine, int context, hserve::SchedulePolicy policy) {
  HEXLLM_CHECK(max_batch >= 1);
  HEXLLM_CHECK(context >= 0);
  ScheduleResult r;
  if (jobs.empty()) {
    return r;  // zeroed — the old implementations divided 0/0 here
  }
  hserve::AnalyticBackend backend(engine);
  hserve::ServeOptions options;
  options.max_batch = max_batch;
  options.policy = policy;
  // Drive the live Submit/Step/Finish API directly: the legacy stream has no fork edges or
  // barrier waves, so whole-stream validation would add nothing. Legacy callers may reuse
  // ids across jobs, which the live API rejects — remap to a dense private id space.
  hserve::ContinuousBatcher batcher(backend, options);
  batcher.Reset();
  for (size_t j = 0; j < jobs.size(); ++j) {
    hserve::ServeJob sj;
    sj.id = static_cast<int>(j);
    sj.context_tokens = context;
    sj.decode_tokens = jobs[j].total_tokens;
    std::string error;
    HEXLLM_CHECK_MSG(batcher.Submit(sj, &error), error.c_str());
  }
  while (batcher.HasWork()) {
    const hserve::StepEvents ev = batcher.Step();
    HEXLLM_CHECK_MSG(ev.stepped, "legacy schedule stalled (KV budget cannot admit)");
  }
  const hserve::ScheduleResult s = batcher.Finish();
  HEXLLM_CHECK_MSG(s.error.empty(), s.error.c_str());
  r.makespan_s = s.makespan_s;
  r.tokens_per_second = s.tokens_per_second;
  r.avg_active_batch = s.avg_active_batch;
  r.slot_utilization = s.slot_utilization;
  r.steps = s.steps;
  return r;
}

}  // namespace

ScheduleResult RunStaticBatching(const std::vector<SampleJob>& jobs, int max_batch,
                                 const Engine& engine, int context) {
  return RunLegacy(jobs, max_batch, engine, context, hserve::SchedulePolicy::kStaticWaves);
}

ScheduleResult RunContinuousBatching(const std::vector<SampleJob>& jobs, int max_batch,
                                     const Engine& engine, int context) {
  return RunLegacy(jobs, max_batch, engine, context, hserve::SchedulePolicy::kContinuous);
}

}  // namespace hrt

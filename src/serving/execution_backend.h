// The serving runtime's execution abstraction.
//
// The paper's end-to-end system (§6) wins because every parallel test-time-scaling sample
// flows through ONE continuously-batched NPU decode loop. This layer gives the repo that
// single execution abstraction: an ExecutionBackend prices (or actually performs) decode
// steps and chunked-prefill admissions for the ContinuousBatcher, which owns all request-
// level policy (slot pool, admission queue, barriers).
//
// Two implementations:
//   * AnalyticBackend — wraps hrt::Engine. Prices a step for the given active batch and the
//     slots' ACTUAL per-slot contexts (mean, bucketed), fixing the old scheduler's
//     fixed-context simplification. Used for the full-size paper models.
//   * FunctionalBackend — wraps hllm::Transformer on the hexsim NPU simulator. Actually
//     decodes tokens (toy configs) and meters time from the simulator's cycle ledger, so
//     the same batcher code path is exercised with real numerics in tests.
#ifndef SRC_SERVING_EXECUTION_BACKEND_H_
#define SRC_SERVING_EXECUTION_BACKEND_H_

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "src/llm/transformer.h"
#include "src/llm/weights.h"
#include "src/runtime/engine.h"
#include "src/serving/job.h"

namespace hserve {

// What the batcher learns from one priced/executed decode step.
struct StepOutcome {
  hrt::StepCost cost;       // decomposition; cost.total_s is the step's wall time
  double watts = 0.0;       // power drawn during the step (energy = watts * total_s)
  std::vector<int> tokens;  // FunctionalBackend: sampled token per active row; else empty
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual const char* name() const = 0;

  // Prepares `slot` for a job whose KV starts at `context_tokens` (prompt + any uncharged
  // prefix), of which `charged_prefill_tokens` are newly prefilled through the chunked
  // pipeline. Returns the admission's wall-time cost in seconds.
  virtual double AdmitSlot(int slot, const ServeJob& job, int context_tokens,
                           int charged_prefill_tokens) = 0;

  // Releases a finished job's slot (KV rows reclaimable).
  virtual void ReleaseSlot(int slot) {}

  // One decode step advancing every listed slot by one token. `contexts[i]` is slot
  // `slots[i]`'s current KV length; pricing must reflect these actual contexts.
  virtual StepOutcome Step(std::span<const int> slots, std::span<const int> contexts) = 0;
};

// Prices steps with the analytic engine. DecodeStep is deterministic per (batch, context),
// so results are cached keyed on (batch, context bucket) — the per-slot-context successor of
// the old scheduler's fixed-context StepCostCache.
class AnalyticBackend : public ExecutionBackend {
 public:
  explicit AnalyticBackend(const hrt::Engine& engine, int context_bucket_tokens = 64);

  const char* name() const override { return "analytic"; }
  double AdmitSlot(int slot, const ServeJob& job, int context_tokens,
                   int charged_prefill_tokens) override;
  StepOutcome Step(std::span<const int> slots, std::span<const int> contexts) override;

  // Bucketed step pricing (exposed for tests): cost of one step at `batch` rows whose mean
  // context rounds up to the bucket containing `context`.
  const hrt::StepCost& BucketedCost(int batch, int context);

 private:
  const hrt::Engine& engine_;
  int bucket_tokens_;
  std::map<std::pair<int, int>, std::pair<hrt::StepCost, double>> step_cache_;
  std::map<int, double> prefill_cache_;
};

// Actually decodes tokens through the functional Transformer on the NPU simulator. Intended
// for toy configs; timing comes from the hexsim cycle ledger (busy seconds composed the same
// way the analytic engine composes its pipeline: max(DMA, HMX, HVX/threads) + CPU lm_head +
// mailbox), so a serving run both computes real logits and advances a realistic clock.
class FunctionalBackend : public ExecutionBackend {
 public:
  FunctionalBackend(hexsim::NpuDevice& dev, const hllm::ModelWeights& weights, int max_batch,
                    int max_context);

  const char* name() const override { return "functional"; }
  double AdmitSlot(int slot, const ServeJob& job, int context_tokens,
                   int charged_prefill_tokens) override;
  StepOutcome Step(std::span<const int> slots, std::span<const int> contexts) override;

  hllm::Transformer& transformer() { return tf_; }

 private:
  // Seconds elapsed on the critical path for the ledger activity since `mark`, plus the
  // CPU lm_head and mailbox costs for `batch` rows; fills `cost`'s busy fields.
  double ComposeStep(const hexsim::CycleLedger& mark, int batch, hrt::StepCost* cost) const;

  hexsim::NpuDevice& dev_;
  hllm::Transformer tf_;
  int max_context_;
  std::vector<int> last_token_;    // per slot: token the next step consumes
  std::vector<float> logits_;      // [max_batch * vocab] scratch
};

}  // namespace hserve

#endif  // SRC_SERVING_EXECUTION_BACKEND_H_

/// \file
/// The serving runtime's execution abstraction.
///
/// The paper's end-to-end system (§6) wins because every parallel test-time-scaling sample
/// flows through ONE continuously-batched NPU decode loop. This layer gives the repo that
/// single execution abstraction: an ExecutionBackend prices (or actually performs) decode
/// steps and chunked-prefill admissions for the ContinuousBatcher, which owns all request-
/// level policy (slot pool, admission queue, barriers).
///
/// Both implementations manage KV memory through the paged block-pool manager
/// (src/kvcache): parallel samples of one prompt_group share the prompt's blocks
/// physically, and beam-search fork jobs (ServeJob::parent_job) map a completed stem's
/// retained blocks copy-on-write instead of re-prefilling it.
///
/// Two implementations:
///   * AnalyticBackend — wraps hrt::Engine. Prices a step for the given active batch and
///     the slots' ACTUAL per-slot contexts (mean, bucketed), fixing the old scheduler's
///     fixed-context simplification. KV is tracked by a storage-free hkv::KvBlockManager
///     (materializing full-size-model KV would cost gigabytes) and admissions can be gated
///     on a DRAM byte budget. Used for the full-size paper models.
///   * FunctionalBackend — wraps hllm::Transformer on the hexsim NPU simulator. Actually
///     decodes tokens (toy configs) through a real hkv::PagedKvCache and meters time from
///     the simulator's cycle ledger, so the same batcher code path is exercised with real
///     numerics in tests. Decode rows fan out across hexec lanes inside StepSeqs and the
///     step's logits are double-buffered for the lm_head overlap; decoded tokens are
///     bit-identical at any lane count (docs/threading_model.md). Driving both backends
///     with one job stream must produce bit-identical block statistics — the serving tests
///     assert exactly that.
#ifndef SRC_SERVING_EXECUTION_BACKEND_H_
#define SRC_SERVING_EXECUTION_BACKEND_H_

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/hexsim/flash.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/attention.h"
#include "src/kvcache/kv_block_manager.h"
#include "src/kvcache/kv_offload.h"
#include "src/llm/sampling.h"
#include "src/llm/transformer.h"
#include "src/llm/weights.h"
#include "src/obs/metrics.h"
#include "src/runtime/engine.h"
#include "src/serving/job.h"

namespace hserve {

// What the batcher learns from one priced/executed decode step.
struct StepOutcome {
  hrt::StepCost cost;       // decomposition; cost.total_s is the step's wall time
  double watts = 0.0;       // power drawn during the step (energy = watts * total_s)
  std::vector<int> tokens;  // FunctionalBackend: sampled token per active row; else empty
  // Speculative cycles only: tokens the step committed per row (accepted draft prefix plus
  // the target's own token, 1..gamma+1). Empty means every row advanced exactly one token
  // (plain decode). When set, `tokens` is flattened row-major: row i owns the next
  // row_token_counts[i] entries.
  std::vector<int> row_token_counts;
};

// Effective per-cycle draft length: the HEXLLM_SPEC_GAMMA environment variable overrides
// `configured` when set to a non-negative integer (docs/speculative_decoding.md).
int SpecGammaFromEnv(int configured);

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual const char* name() const = 0;

  // Prepares `slot` for a job whose KV starts at `context_tokens` (prompt + any uncharged
  // prefix), of which `charged_prefill_tokens` are newly prefilled through the chunked
  // pipeline. Fork jobs (job.parent_job >= 0) map the parent's retained KV instead of
  // prefilling and must cost 0. Returns the admission's wall-time cost in seconds.
  virtual double AdmitSlot(int slot, const ServeJob& job, int context_tokens,
                           int charged_prefill_tokens) = 0;

  // Releases a finished job's slot (KV rows reclaimable).
  virtual void ReleaseSlot(int slot) {}

  // One decode step advancing every listed slot by one token. `contexts[i]` is slot
  // `slots[i]`'s current KV length; pricing must reflect these actual contexts.
  virtual StepOutcome Step(std::span<const int> slots, std::span<const int> contexts) = 0;

  // One speculative decode cycle (docs/speculative_decoding.md): row i drafts gammas[i]
  // tokens with the backend's draft model and the target verifies all gammas[i]+1 positions
  // in ONE batched multi-row step (gamma-0 rows ride the same verify as plain single-row
  // lanes). Each row commits the accepted draft prefix plus the target's own token
  // (1..gammas[i]+1 tokens, reported via StepOutcome::row_token_counts) and rolls its paged
  // KV back to the committed length. The returned cost covers the whole cycle: gamma draft
  // steps plus one verify step. The caller must keep gammas[i] < the row's remaining decode
  // budget so a fully-accepted cycle never overshoots the admission's KV reservation.
  // Backends without a draft model fall back to a plain step.
  virtual StepOutcome SpeculativeStep(std::span<const int> slots,
                                      std::span<const int> contexts,
                                      std::span<const int> gammas) {
    return Step(slots, contexts);
  }

  // Draft tokens per cycle this backend can run (0 = no draft model configured; the batcher
  // then decodes ServeJob::speculative jobs plainly).
  virtual int spec_gamma() const { return 0; }

  // Fork support: snapshots `slot`'s KV under the completed job's id so fork children can
  // map it after the slot is released; drops the snapshot once the last child admitted.
  virtual void RetainKv(int slot, int job_id) {}
  virtual void DropRetained(int job_id) {}

  // Preemption support (ServeOptions::enable_preemption). PauseSlot snapshots a DECODING
  // job's full state — KV behind a retained handle (pages stay resident, nothing is copied
  // or evicted) plus whatever decode state a bit-identical resume needs (the functional
  // backend: next input token, sampler options, sampler Rng state) — then frees the slot.
  // ResumeSlot maps the snapshot back into a (different or same) free slot and restores the
  // decode state; the covered positions allocate no new blocks and the resumed token stream
  // is bit-identical to an un-preempted run. CanResume asks whether resuming `job_id` now
  // fits the KV budget (its pages are already resident, so only future growth matters).
  virtual void PauseSlot(int slot, int job_id) {}
  virtual void ResumeSlot(int slot, int job_id, int context_tokens) {}
  virtual bool CanResume(int job_id) { return true; }

  // Drops the prompt-prefix anchor retained for a prompt_group once all its jobs completed.
  virtual void ReleaseGroup(int prompt_group) {}

  // Whether admitting `job` now (KV starting at `context_tokens`) fits the KV pool/budget,
  // reserving worst-case growth for the slots already running. Backends without KV
  // accounting always admit.
  virtual bool CanAdmit(const ServeJob& job, int context_tokens) { return true; }

  // Largest context (prompt + context + decode) a job may reach on this backend.
  virtual int max_context() const { return std::numeric_limits<int>::max(); }

  // Physical-vs-logical KV accounting snapshot (zeroed for backends without it).
  virtual hkv::KvStats kv_stats() const { return {}; }

  // KV storage dtype this backend accounts/stores blocks in (docs/kv_quantization.md).
  // F16 for backends without a quantized mode.
  virtual hquant::KvDtype kv_dtype() const { return hquant::KvDtype::kF16; }

  // Publishes backend-specific counters into the serving run's metrics registry (called by
  // the batcher when it snapshots a finished run). The functional backend exports the full
  // simulated-device activity profile (hexsim.* metrics); the default exports nothing.
  virtual void ExportMetrics(obs::Registry& registry) const {}
};

// Prices steps with the analytic engine. DecodeStep is deterministic per (batch, context),
// so results are cached keyed on (batch, context bucket) — the per-slot-context successor of
// the old scheduler's fixed-context StepCostCache.
class AnalyticBackend : public ExecutionBackend {
 public:
  struct Options {
    int context_bucket_tokens = 64;
    // Positions per KV block in the accountant. Must match the functional backend's block
    // size (hkv::kDefaultBlockTokens) for stat-parity tests.
    int kv_block_tokens = hkv::kDefaultBlockTokens;
    // DRAM budget for KV blocks; admissions are deferred (or rejected when the batch is
    // empty) once the worst-case block demand exceeds it. <= 0 tracks without gating.
    int64_t kv_budget_bytes = 0;
    // KV storage dtype the accountant prices blocks in. Quantized modes shrink
    // bytes_per_block 1.9-3.6x, so the same kv_budget_bytes admits proportionally more
    // blocks (more Best-of-N lanes / longer contexts — the KV-quantization payoff).
    hquant::KvDtype kv_dtype = hquant::KvDtype::kF16;
    int kv_quant_group = hquant::kGroupSize;  // elements per scale group
    // Speculative decoding (docs/speculative_decoding.md): a draft engine prices the gamma
    // autoregressive draft steps of each cycle and the target engine prices the batched
    // verify; per-row accepted-prefix lengths are drawn from the classic geometric
    // acceptance process at `spec_acceptance` (htts::SpeculativeAcceptanceRate supplies a
    // calibrated value) with a backend-owned deterministic Rng. Jobs opt in via
    // ServeJob::speculative; nullptr leaves speculation off. HEXLLM_SPEC_GAMMA overrides
    // spec_gamma. The draft engine must outlive the backend.
    const hrt::Engine* draft_engine = nullptr;
    int spec_gamma = 4;
    double spec_acceptance = 0.8;
    uint64_t spec_seed = 0x5eedbeef;
    // Tiered KV offload (docs/long_context.md): DRAM-resident KV budget in blocks; <= 0
    // disables the tier. When enabled, contexts whose attended set exceeds the budget
    // stream the excess blocks from a flash tier every step (charged per StepCost::flash_s;
    // only the non-overlapped part stalls total_s) and admission stops hard-gating on
    // kv_budget_bytes — the flash tier is the backing store, so a 64k context decodes
    // under a 16k-resident DRAM budget instead of failing admission.
    int64_t kv_offload_resident_blocks = 0;
    hexsim::FlashSpec flash;  // offload tier bandwidth/latency envelope
    // Sliding-window + attention-sink masking (docs/long_context.md): pricing attends at
    // most ResidentTokens() per row, and admission reserves only the resident set. The
    // default (window_blocks = 0) is disabled — legacy pricing bit-for-bit.
    hkern::AttnWindowSpec attn_window;
  };

  AnalyticBackend(const hrt::Engine& engine, const Options& options);
  explicit AnalyticBackend(const hrt::Engine& engine, int context_bucket_tokens = 64)
      : AnalyticBackend(engine, MakeOptions(context_bucket_tokens)) {}

  const char* name() const override { return "analytic"; }
  double AdmitSlot(int slot, const ServeJob& job, int context_tokens,
                   int charged_prefill_tokens) override;
  void ReleaseSlot(int slot) override;
  StepOutcome Step(std::span<const int> slots, std::span<const int> contexts) override;
  StepOutcome SpeculativeStep(std::span<const int> slots, std::span<const int> contexts,
                              std::span<const int> gammas) override;
  int spec_gamma() const override { return spec_gamma_; }
  void RetainKv(int slot, int job_id) override;
  void DropRetained(int job_id) override;
  void ReleaseGroup(int prompt_group) override;
  void PauseSlot(int slot, int job_id) override;
  void ResumeSlot(int slot, int job_id, int context_tokens) override;
  bool CanResume(int job_id) override;
  bool CanAdmit(const ServeJob& job, int context_tokens) override;
  int max_context() const override;
  hkv::KvStats kv_stats() const override { return kv_.stats(); }
  hquant::KvDtype kv_dtype() const override { return kv_dtype_; }
  // Exports kv.dtype when a quantized mode is active (the analytic backend has no stored
  // rows, so there are no kv.quant.* error gauges to publish). F16 runs export nothing —
  // keeping legacy metric snapshots byte-identical.
  void ExportMetrics(obs::Registry& registry) const override;

  // Bucketed step pricing (exposed for tests): cost of one step at `batch` rows whose mean
  // context rounds up to the bucket containing `context`.
  const hrt::StepCost& BucketedCost(int batch, int context);

 private:
  struct Retained {
    int64_t handle = 0;
    int len = 0;
  };

  // A preempted job's snapshot: the retained KV plus the end length the batcher committed
  // to at admission (so the free-block reservation survives the pause).
  struct Paused {
    int64_t handle = 0;
    int len = 0;
    int end_len = 0;
  };

  static Options MakeOptions(int context_bucket_tokens) {
    Options o;
    o.context_bucket_tokens = context_bucket_tokens;
    return o;
  }
  // Shared-prefix length `job` would map on admission (fork stem or group prompt anchor).
  int SharedPrefixLen(const ServeJob& job, int context_tokens) const;
  void TrackSlot(int slot, int end_len);
  // Per-row context as priced: windowed rows attend at most ResidentTokens().
  int EffectiveContext(int context) const;
  // Flash streaming for one step over the (effective) contexts: charges the tier for the
  // attended blocks beyond the resident budget and folds the non-overlapped stall into
  // `cost` (cost->total_s must already hold the step's compute time).
  void ChargeOffload(std::span<const int> contexts, hrt::StepCost* cost);
  // Bucketed draft-engine step pricing (the draft twin of BucketedCost).
  const hrt::StepCost& DraftCost(int batch, int context_bucket);

  const hrt::Engine& engine_;
  int bucket_tokens_;
  std::map<std::pair<int, int>, std::pair<hrt::StepCost, double>> step_cache_;
  std::map<int, double> prefill_cache_;

  // Speculative decoding: draft-engine pricing cache plus the deterministic geometric
  // acceptance process. spec_gamma_ is 0 when no draft engine is configured.
  const hrt::Engine* draft_engine_ = nullptr;
  int spec_gamma_ = 0;
  double spec_acceptance_ = 0.0;
  hexllm::Rng spec_rng_{0};
  std::map<std::pair<int, int>, hrt::StepCost> draft_step_cache_;
  int64_t spec_rollback_blocks_ = 0;
  int64_t spec_cycles_ = 0;

  // Storage-free KV accountant: same block math as the functional backend's PagedKvCache,
  // no bytes. budget_blocks_ < 0 means unlimited.
  hkv::KvBlockManager kv_;
  hquant::KvDtype kv_dtype_ = hquant::KvDtype::kF16;
  int64_t budget_blocks_ = -1;
  // Tiered offload + window pricing state (docs/long_context.md). offload_blocks_ <= 0
  // disables the tier; window_ disabled leaves every context priced at full length.
  int64_t offload_blocks_ = 0;
  int64_t bytes_per_block_ = 0;
  hexsim::FlashTier flash_;
  double offload_stall_s_ = 0.0;
  hkern::AttnWindowSpec window_;
  std::vector<int> eff_contexts_;  // per-step scratch for windowed pricing
  std::vector<int> end_len_;           // per slot: context+decode at admission (0 = free)
  std::map<int, Retained> retained_;   // completed job id -> retained stem
  std::map<int, Retained> anchors_;    // prompt_group -> retained prompt prefix
  std::map<int, Paused> paused_;       // preempted job id -> paused snapshot
};

// Actually decodes tokens through the functional Transformer on the NPU simulator. Intended
// for toy configs; timing comes from the hexsim cycle ledger (busy seconds composed the same
// way the analytic engine composes its pipeline: max(DMA, HMX, HVX/threads) + CPU lm_head +
// mailbox), so a serving run both computes real logits and advances a realistic clock.
class FunctionalBackend : public ExecutionBackend {
 public:
  // Draft-model configuration for speculative decoding (ServeJob::speculative,
  // docs/speculative_decoding.md). The draft weights must share the target's vocabulary
  // (exact-match acceptance compares token ids) and must outlive the backend; running the
  // draft on the SAME simulated device folds its charges into the same cycle ledger the
  // cycle cost is composed from. HEXLLM_SPEC_GAMMA overrides gamma.
  struct SpecOptions {
    const hllm::ModelWeights* draft = nullptr;  // nullptr leaves speculation off
    int gamma = 4;                              // draft tokens per cycle
  };

  // kv_pool_blocks <= 0 sizes the KV block pool for `max_batch` dense sequences (plus CoW
  // and retention slack); tests pass a small pool to exercise admission gating. `kv_dtype`
  // selects the transformer's KV storage mode (docs/kv_quantization.md); F16 is
  // bit-identical to the legacy path.
  FunctionalBackend(hexsim::NpuDevice& dev, const hllm::ModelWeights& weights, int max_batch,
                    int max_context, int64_t kv_pool_blocks,
                    hquant::KvDtype kv_dtype, int kv_quant_group, const SpecOptions& spec);
  // Convenience overload without a draft model (SpecOptions can't be a default argument:
  // its member initializers are incomplete inside the enclosing class).
  FunctionalBackend(hexsim::NpuDevice& dev, const hllm::ModelWeights& weights, int max_batch,
                    int max_context, int64_t kv_pool_blocks = 0,
                    hquant::KvDtype kv_dtype = hquant::KvDtype::kF16,
                    int kv_quant_group = hquant::kGroupSize);

  // Wires tiered KV offload and/or sliding-window attention into the transformer
  // (docs/long_context.md). Must be called before the first admission: the offload engine
  // requires an empty paged cache. A disabled window plus a <= 0 resident budget is a
  // no-op, keeping the legacy path bit-identical. The window applies to the target model
  // only — windowing the draft would merely shift acceptance, never committed tokens.
  void ConfigureLongContext(const hkv::KvOffloadOptions& offload,
                            const hkern::AttnWindowSpec& window);

  const char* name() const override { return "functional"; }
  double AdmitSlot(int slot, const ServeJob& job, int context_tokens,
                   int charged_prefill_tokens) override;
  void ReleaseSlot(int slot) override;
  StepOutcome Step(std::span<const int> slots, std::span<const int> contexts) override;
  StepOutcome SpeculativeStep(std::span<const int> slots, std::span<const int> contexts,
                              std::span<const int> gammas) override;
  int spec_gamma() const override { return spec_gamma_; }
  void RetainKv(int slot, int job_id) override;
  void DropRetained(int job_id) override;
  void ReleaseGroup(int prompt_group) override;
  void PauseSlot(int slot, int job_id) override;
  void ResumeSlot(int slot, int job_id, int context_tokens) override;
  bool CanResume(int job_id) override;
  bool CanAdmit(const ServeJob& job, int context_tokens) override;
  int max_context() const override { return max_context_; }
  hkv::KvStats kv_stats() const override { return tf_.kv().stats(); }
  hquant::KvDtype kv_dtype() const override { return tf_.kv().dtype(); }
  void ExportMetrics(obs::Registry& registry) const override {
    hexsim::ExportDeviceMetrics(dev_, registry);
    // Peak bytes of the transformer's persistent step-scratch arena
    // (docs/metrics_schema.md, docs/performance.md).
    registry.Set("exec.workspace.bytes",
                 static_cast<double>(tf_.workspace().high_watermark()));
    // Quantized KV modes publish the dtype and the write-time round-trip error proxy; F16
    // runs export nothing extra, keeping legacy snapshots byte-identical.
    if (tf_.kv().dtype() != hquant::KvDtype::kF16) {
      hkv::ExportKvQuantStats(tf_.kv().dtype(), tf_.kv().quant_stats(), registry);
    }
    // Speculative runs publish the rollback counter (docs/metrics_schema.md); plain runs
    // export nothing extra, keeping legacy snapshots byte-identical.
    if (spec_cycles_ > 0) {
      registry.Count("spec.rollback_blocks", spec_rollback_blocks_);
    }
    // Tiered offload / windowed runs publish their series (docs/long_context.md); plain
    // runs export nothing extra, keeping legacy snapshots byte-identical.
    if (tf_.kv().offload_enabled()) {
      hkv::ExportKvOffloadStats(tf_.kv().offload()->stats(), registry);
    }
    if (tf_.attention_window().enabled()) {
      const hkern::AttnWindowSpec& w = tf_.attention_window();
      registry.Set("attn.window.sink_blocks", static_cast<double>(w.sink_blocks));
      registry.Set("attn.window.window_blocks", static_cast<double>(w.window_blocks));
      registry.Set("attn.window.resident_tokens", static_cast<double>(w.ResidentTokens()));
    }
  }

  hllm::Transformer& transformer() { return tf_; }
  hllm::Transformer* draft_transformer() { return draft_.get(); }

 private:
  struct Retained {
    int64_t handle = 0;
    int len = 0;
    int last_token = 0;  // token the forked child's first decode step consumes
  };

  // A preempted job's full decode state. The Rng copy is the exact sampler state at the
  // pause point (hexllm::Rng copies are state snapshots), which is what makes the resumed
  // stream bit-identical for stochastic sampling policies, not just greedy.
  struct Paused {
    int64_t handle = 0;
    int len = 0;
    int last_token = 0;
    int end_len = 0;
    bool speculative = false;  // resume re-primes the draft KV from the synthetic view
    hllm::SamplerOptions opts;
    hexllm::Rng rng{0};
  };

  // Seconds elapsed on the critical path for the ledger activity since `mark`, plus the
  // CPU lm_head and mailbox costs for `batch` rows; fills `cost`'s busy fields.
  double ComposeStep(const hexsim::CycleLedger& mark, int batch, hrt::StepCost* cost) const;
  // Tiered-offload step choreography (no-op when offload is off). BeginOffloadStep runs
  // before the forward: advances the engine clock by the PREVIOUS forward's compute time —
  // that is the window queued prefetches overlapped with — and snapshots the stats.
  // FoldOffload runs after: demotes over-budget blocks (write-behind), queues prefetches
  // for each slot's predicted next-step attended set, and folds the stall/traffic deltas
  // into `cost` (stall extends total_s; flash_s/flash_bytes report the tier traffic).
  hkv::KvOffloadStats BeginOffloadStep();
  void FoldOffload(const hkv::KvOffloadStats& mark, std::span<const int> slots,
                   std::span<const int> contexts, double npu_s, hrt::StepCost* cost);
  int SharedPrefixLen(const ServeJob& job, int context_tokens) const;
  // Target-side admission (the pre-speculation AdmitSlot body).
  double AdmitTarget(int slot, const ServeJob& job, int context_tokens,
                     int charged_prefill_tokens);
  // (Re)builds the slot's draft KV for a speculative job by prefilling the deterministic
  // synthetic view of its context; clears any stale draft state otherwise. Returns the
  // draft prefill's wall-time cost.
  double AdmitDraft(int slot, int job_id, bool speculative, int context_tokens);

  hexsim::NpuDevice& dev_;
  hllm::Transformer tf_;
  int max_context_;
  std::vector<int> last_token_;    // per slot: token the next step consumes
  // Per-slot sampling policy + Rng, seeded from the job at admission. Sampling runs on the
  // batcher's bookkeeping thread (after StepSeqs returns), so decoded tokens are
  // deterministic at any HEXLLM_NUM_THREADS.
  std::vector<hllm::SamplerOptions> sampler_opts_;
  std::vector<hexllm::Rng> sampler_rng_;
  // Double-buffered logits, [max_batch * vocab] each: step N writes buffer N % 2 and the
  // previous step's buffer stays intact until step N+1 flips again. This is the mechanism
  // behind ServeOptions::overlap_lm_head — the CPU lm_head (argmax consumer) of step N can
  // run while the NPU fills the other buffer for step N+1, so the batcher may charge
  // max(npu, lm_head) instead of their sum (docs/threading_model.md).
  std::array<std::vector<float>, 2> logits_buf_;
  int logits_cur_ = 0;             // buffer index the LAST step wrote
  std::vector<int> end_len_;       // per slot: context+decode at admission (0 = free)
  std::map<int, Retained> retained_;  // completed job id -> retained stem
  std::map<int, Retained> anchors_;   // prompt_group -> retained prompt prefix
  std::map<int, Paused> paused_;      // preempted job id -> paused snapshot

  // Speculative decoding (docs/speculative_decoding.md). The draft transformer shares the
  // simulated device, so its charges land in the same cycle ledger the cycle cost is
  // composed from. Draft KV is (re)built from the synthetic context view at admission and
  // resume — losslessness never depends on draft conditioning, because every committed
  // token is sampled from the target's own logits under exact plain-decode conditioning.
  std::unique_ptr<hllm::Transformer> draft_;
  int spec_gamma_ = 0;               // env-resolved draft tokens per cycle (0 = off)
  std::vector<bool> spec_slot_;      // per slot: draft KV live (speculative job)
  std::vector<int> draft_carry_;     // per slot: fully-accepted last proposal the draft has
                                     // not consumed yet (-1 = in sync); fed back via a
                                     // one-token catch-up prefill at the next cycle
  std::vector<int> draft_prev_;      // per slot: input of the next draft step (intra-cycle)
  std::vector<float> draft_logits_;  // [max_batch x vocab] draft-step scratch
  // Cycle scratch (reused across cycles; see docs/performance.md).
  std::vector<int> spec_tokens_, spec_seqs_, spec_counts_;
  std::vector<std::vector<int>> spec_proposals_;  // per slot: this cycle's draft tokens
  int64_t spec_rollback_blocks_ = 0;
  int64_t spec_cycles_ = 0;

  // Tiered offload (docs/long_context.md): compute seconds of the last forward — the
  // overlap window the next step's queued prefetches hide under — plus prefetch scratch.
  double last_npu_s_ = 0.0;
  std::vector<int> prefetch_scratch_;
};

}  // namespace hserve

#endif  // SRC_SERVING_EXECUTION_BACKEND_H_

/// \file
/// The serving runtime's request type.
///
/// Kept dependency-light so workload producers (the TTS methods in src/tts, the request
/// frontend in src/frontend, benches, examples) can emit job streams without pulling in the
/// execution backends. The only dependency is hllm::SamplerOptions (src/llm/sampling.h),
/// itself header-light, so every decode path samples through one seeded sampler.
#ifndef SRC_SERVING_JOB_H_
#define SRC_SERVING_JOB_H_

#include <algorithm>
#include <cstdint>

#include "src/llm/sampling.h"

namespace hserve {

// A SamplerOptions whose default is greedy argmax — the serving runtime's default decode
// policy (hllm::SamplerOptions itself defaults to temperature 1.0 for the TTS library).
inline hllm::SamplerOptions GreedySampler() {
  hllm::SamplerOptions o;
  o.temperature = 0.0f;
  return o;
}

// One decode request: a sample that must generate `decode_tokens` tokens on top of a prompt.
struct ServeJob {
  int id = 0;
  // Jobs sharing a prompt_group share one charged prefill (parallel TTS samples of one task
  // decode against a common prompt). Negative means the job pays its own prompt.
  int prompt_group = -1;
  int prompt_tokens = 0;   // chunked-prefill charged on the group's first admission
  int context_tokens = 0;  // pre-existing uncharged context (e.g. a beam prefix, or the
                           // legacy scheduler API's fixed `context` parameter)
  int decode_tokens = 0;   // tokens this job generates
  // Admission wave within the prompt_group: a job admits only after every job of the same
  // group with a smaller barrier has completed (beam-search expansion rounds).
  int barrier = 0;
  // Length of the group's SHARED PROMPT PREFIX. By default (-1) the whole prompt is the
  // shared unit — every member of a prompt_group decodes against one identical prompt, the
  // original TTS semantics: the group's first admission prefills and anchors the full
  // prompt, later members map it and charge nothing. A non-negative value instead declares
  // that only the first `group_prefix_tokens` prompt positions are common to the group (a
  // registered system prompt — src/fleet's PrefixRegistry): the anchor covers only the
  // prefix, later members map the prefix and prefill (and charge) their remaining
  // `prompt_tokens - group_prefix_tokens` positions. Ignored for ungrouped jobs.
  int group_prefix_tokens = -1;
  // Fork source: id of a completed job whose KV this job continues. The child admits by
  // mapping the parent's retained KV blocks — zero re-prefill of the shared stem;
  // divergence is copy-on-write. The child's starting context (prompt_tokens +
  // context_tokens) must be at least the parent's final KV length; any EXCESS over the
  // parent's length is fresh tokens prefilled (and charged) at admission — this is how a
  // dialog session's follow-up turn re-prefills only the new turn (src/frontend). Negative
  // means no fork (fresh admission). In a batched stream (ContinuousBatcher::Run) the
  // parent must share a non-negative prompt_group at a strictly smaller barrier, and job
  // ids must be unique; in live submission (Submit/Step) the parent must already have
  // completed with retained KV.
  int parent_job = -1;
  // Admission priority: higher admits first, and (with ServeOptions::enable_preemption) a
  // higher-priority arrival may pause a running lower-priority decode to take its slot.
  int priority = 0;
  // Retain the job's final KV past completion under its id (a retained-handle snapshot), so
  // later jobs can fork from it (session follow-up turns). The owner releases it via
  // ContinuousBatcher::ReleaseRetained. Jobs with fork children in a batched stream are
  // retained automatically regardless of this flag.
  bool retain_kv = false;
  // Decode with speculative drafting (docs/speculative_decoding.md): a smaller draft model
  // proposes gamma tokens per cycle and the target verifies all gamma+1 positions in one
  // batched multi-row step, rolling rejected suffixes back through the paged-KV tail.
  // Honored only when the backend was configured with a draft model (and
  // ServeOptions::spec_gamma does not disable it); plain decode otherwise. Lossless: the
  // committed token stream is bit-identical to plain decode for any sampler, because every
  // committed token is sampled from the target's own logits under identical conditioning.
  bool speculative = false;
  // Per-request sampling policy, applied by token-producing backends. Defaults to greedy
  // argmax, which keeps decoded streams identical to the pre-sampler runtime. Together with
  // `seed`, decoded text is deterministic at any thread count: sampling happens on the
  // bookkeeping thread from a per-slot Rng seeded at admission.
  hllm::SamplerOptions sampler = GreedySampler();
  uint64_t seed = 0;  // seeds the per-job sampler Rng at admission
};

// Prompt positions `job` shares with its prompt_group: the whole prompt by default, or the
// explicit group_prefix_tokens cap. Zero for ungrouped / promptless jobs.
inline int GroupPrefixLen(const ServeJob& job) {
  if (job.prompt_group < 0 || job.prompt_tokens <= 0) {
    return 0;
  }
  return job.group_prefix_tokens >= 0 ? std::min(job.group_prefix_tokens, job.prompt_tokens)
                                      : job.prompt_tokens;
}

}  // namespace hserve

#endif  // SRC_SERVING_JOB_H_

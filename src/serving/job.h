/// \file
/// The serving runtime's request type.
///
/// Kept dependency-free so workload producers (the TTS methods in src/tts, benches,
/// examples) can emit job streams without pulling in the execution backends.
#ifndef SRC_SERVING_JOB_H_
#define SRC_SERVING_JOB_H_

namespace hserve {

// One decode request: a sample that must generate `decode_tokens` tokens on top of a prompt.
struct ServeJob {
  int id = 0;
  // Jobs sharing a prompt_group share one charged prefill (parallel TTS samples of one task
  // decode against a common prompt). Negative means the job pays its own prompt.
  int prompt_group = -1;
  int prompt_tokens = 0;   // chunked-prefill charged on the group's first admission
  int context_tokens = 0;  // pre-existing uncharged context (e.g. a beam prefix, or the
                           // legacy scheduler API's fixed `context` parameter)
  int decode_tokens = 0;   // tokens this job generates
  // Admission wave within the prompt_group: a job admits only after every job of the same
  // group with a smaller barrier has completed (beam-search expansion rounds).
  int barrier = 0;
  // Fork source: id of a completed job in the same prompt_group (at a strictly smaller
  // barrier) whose KV this job continues. The child admits by mapping the parent's retained
  // KV blocks — zero re-prefill of the shared stem; divergence is copy-on-write. The
  // child's starting context (prompt_tokens + context_tokens) must equal the parent's final
  // KV length. Negative means no fork (fresh admission). When any job forks, job ids in the
  // stream must be unique.
  int parent_job = -1;
};

}  // namespace hserve

#endif  // SRC_SERVING_JOB_H_

/// \file
/// The request-level serving runtime: one batched decode loop that every workload flows
/// through.
///
/// The ContinuousBatcher owns all scheduling policy on top of an ExecutionBackend:
///   * a KV-slot pool of `max_batch` slots with free-list reclamation — a finished job's
///     slot is reusable on the very next step (continuous batching), or held until the wave
///     drains (static batching, for the paper's Figure 14 comparison);
///   * an admission queue with per-prompt-group barriers: a job admits only after every
///     same-group job with a smaller barrier completed (beam-search expansion rounds);
///   * chunked-prefill admission cost, charged once per prompt_group (parallel TTS samples
///     share one prompt's prefill) — previously RunContinuousBatching ignored prefill;
///   * step pricing from each slot's ACTUAL growing context (the backend sees per-slot
///     context lengths every step), replacing the old fixed-context simplification;
///   * NPU/CPU overlap accounting (ServeOptions::overlap_lm_head): the CPU lm_head of step
///     N pipelines under the NPU time of step N+1, the paper's Figure 16 optimization;
///   * optional per-step Chrome-trace recording via hrt::TraceBuilder.
///
/// The batcher itself is single-threaded; parallelism lives below it (the backends fan
/// decode rows and kernel tiles across hexec lanes — docs/threading_model.md).
#ifndef SRC_SERVING_CONTINUOUS_BATCHER_H_
#define SRC_SERVING_CONTINUOUS_BATCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/trace.h"
#include "src/serving/execution_backend.h"

namespace hserve {

enum class SchedulePolicy : uint8_t {
  kContinuous,   // freed slots refill from the admission queue on the next step
  kStaticWaves,  // jobs run in waves; a finished row idles (padding) until the wave drains
};

struct ServeOptions {
  int max_batch = 16;
  SchedulePolicy policy = SchedulePolicy::kContinuous;
  bool record_trace = false;  // export per-step lanes into ScheduleResult::trace
  int max_trace_steps = 256;  // cap on traced steps/admissions (traces grow fast)
  bool record_steps = false;  // per-step occupancy log (step_active / step_occupied)
  // Pipeline the CPU lm_head of step N under the NPU execution of step N+1 (the paper's
  // Figure 16 NPU/CPU overlap; the functional backend's double-buffered logits are the
  // enabling mechanism). A step with >= 2 occupied rows is charged
  // max(npu_s, lm_head_s) + comm_s instead of the serial sum; singleton steps — and
  // backends whose cost carries no lm_head/NPU split — always charge serially. The charged
  // value is applied uniformly to makespan, decode time, energy and the step-latency
  // histogram (docs/threading_model.md has the full accounting rule).
  bool overlap_lm_head = true;
};

// One admission record (job -> slot binding), in admission order.
struct Admission {
  int job_id = 0;
  int slot = 0;
  int64_t step = 0;    // index of the first decode step the job participates in
  double time_s = 0.0; // makespan after the admission's prefill charge
};

struct Completion {
  int job_id = 0;
  int slot = 0;
  int64_t step = 0;    // index of the decode step that produced the job's last token
  double time_s = 0.0;
};

struct ScheduleResult {
  // Non-empty when the job stream was rejected (invalid fields, fork graph violations, or a
  // KV budget too small to make progress). All other fields are meaningless then — the old
  // behavior was a CHECK-abort; malformed input now reports instead of crashing.
  std::string error;
  double makespan_s = 0.0;
  double prefill_s = 0.0;          // time spent in charged chunked-prefill admissions
  double decode_s = 0.0;           // time spent in decode steps
  double tokens_per_second = 0.0;  // useful decoded tokens / makespan
  double avg_active_batch = 0.0;   // mean useful (non-padding) rows per step
  double avg_context = 0.0;        // mean per-row KV length over all stepped rows
  double slot_utilization = 0.0;   // useful rows / occupied rows (padding discounts this)
  double energy_j = 0.0;           // sum over steps of watts x step seconds
  int64_t steps = 0;
  int64_t decoded_tokens = 0;      // useful tokens only (padding rows don't count)
  int64_t prefilled_tokens = 0;    // charged prefill tokens (shared prompts charge once)
  int64_t forked_admissions = 0;   // jobs admitted by mapping a parent's retained KV
  int64_t admission_deferrals = 0; // admissions pushed back because the KV pool was full
  // Physical-vs-logical KV accounting at the end of the run (peaks cover the whole run):
  // physical bytes are what the paged pool actually held, logical bytes what a dense
  // per-sequence layout would have held; kv.sharing_ratio() is the headline saving.
  hkv::KvStats kv;
  std::vector<Admission> admissions;
  std::vector<Completion> completions;
  std::vector<int> step_active;    // record_steps: useful rows per step
  std::vector<int> step_occupied;  // record_steps: occupied rows per step
  // Functional backends: tokens each job generated, indexed by the job's position in the
  // input vector (empty for pricing-only backends).
  std::vector<std::vector<int>> job_tokens;
  hrt::TraceBuilder trace;         // record_trace: per-step lanes + admissions
  // The run's full metrics snapshot (docs/metrics_schema.md): serve.* counters/gauges that
  // mirror the scalar fields above, serve.step_seconds / serve.step_active_rows histograms,
  // kv.* from the KV accountant, and — for the functional backend — the simulated device's
  // hexsim.* activity profile. Populated on every return path, including error results.
  obs::MetricsSnapshot metrics;
};

class ContinuousBatcher {
 public:
  ContinuousBatcher(ExecutionBackend& backend, const ServeOptions& options);

  // Runs every job to completion and returns the aggregate schedule. An empty job list
  // yields a zeroed result (no NaNs). Jobs must each decode at least one token.
  ScheduleResult Run(const std::vector<ServeJob>& jobs);

 private:
  ExecutionBackend& backend_;
  ServeOptions options_;
};

}  // namespace hserve

#endif  // SRC_SERVING_CONTINUOUS_BATCHER_H_

/// \file
/// The request-level serving runtime: one batched decode loop that every workload flows
/// through.
///
/// The ContinuousBatcher owns all scheduling policy on top of an ExecutionBackend:
///   * a KV-slot pool of `max_batch` slots with free-list reclamation — a finished job's
///     slot is reusable on the very next step (continuous batching), or held until the wave
///     drains (static batching, for the paper's Figure 14 comparison);
///   * a priority-ordered admission queue with per-prompt-group barriers: a job admits only
///     after every same-group job with a smaller barrier completed (beam-search expansion
///     rounds), and higher-priority jobs admit first;
///   * SLO-aware preemption (ServeOptions::enable_preemption): a higher-priority arrival
///     may PAUSE a running lower-priority decode — the victim's KV pages stay resident
///     behind a retained handle while its slot is reassigned, and the paused job later
///     resumes bit-identically from its paged KV (sampler state included);
///   * chunked-prefill admission cost, charged once per prompt_group (parallel TTS samples
///     share one prompt's prefill); fork admissions charge only tokens past the parent's
///     retained KV (a session's follow-up turn re-prefills only the new turn);
///   * step pricing from each slot's ACTUAL growing context (the backend sees per-slot
///     context lengths every step), replacing the old fixed-context simplification;
///   * NPU/CPU overlap accounting (ServeOptions::overlap_lm_head): the CPU lm_head of step
///     N pipelines under the NPU time of step N+1, the paper's Figure 16 optimization;
///   * speculative-decoding cycles (ServeJob::speculative + a backend draft model,
///     docs/speculative_decoding.md): rows with per-row gamma > 0 commit up to gamma+1
///     tokens per charged step through ExecutionBackend::SpeculativeStep, losslessly;
///   * optional per-step Chrome-trace recording via hrt::TraceBuilder.
///
/// Two driving modes share one step loop:
///   * batch — Run(jobs) validates a complete job stream, then drives Submit/Step/Finish
///     internally. The result is identical to the original batch-scoped scheduler.
///   * live — Submit(job) enqueues timestamped work as it arrives and Step() advances the
///     world by one decode step, reporting admissions/tokens/completions/preemptions as
///     StepEvents. The request frontend (src/frontend, docs/serving_frontend.md) drives
///     this mode with an event loop, streaming per-token callbacks to its requests.
///
/// Job lifecycle (docs/serving_frontend.md has the full state machine):
///
///     queued -> prefilling -> decoding -> done
///                                \-> paused -> decoding (resume, bit-identical)
///
/// The batcher itself is single-threaded; parallelism lives below it (the backends fan
/// decode rows and kernel tiles across hexec lanes — docs/threading_model.md).
#ifndef SRC_SERVING_CONTINUOUS_BATCHER_H_
#define SRC_SERVING_CONTINUOUS_BATCHER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/runtime/trace.h"
#include "src/serving/execution_backend.h"

namespace hserve {

enum class SchedulePolicy : uint8_t {
  kContinuous,   // freed slots refill from the admission queue on the next step
  kStaticWaves,  // jobs run in waves; a finished row idles (padding) until the wave drains
};

// Explicit job lifecycle, exposed for the frontend's per-request bookkeeping.
enum class JobState : uint8_t {
  kQueued,      // submitted, waiting in the admission queue
  kPrefilling,  // admission in progress (prompt running through the chunked prefill)
  kDecoding,    // occupying a slot, producing tokens
  kPaused,      // preempted: slot released, KV resident behind a retained handle
  kDone,        // all tokens decoded
};

struct ServeOptions {
  int max_batch = 16;
  SchedulePolicy policy = SchedulePolicy::kContinuous;
  bool record_trace = false;  // export per-step lanes into ScheduleResult::trace
  int max_trace_steps = 256;  // cap on traced steps/admissions (traces grow fast)
  bool record_steps = false;  // per-step occupancy log (step_active / step_occupied)
  // Pipeline the CPU lm_head of step N under the NPU execution of step N+1 (the paper's
  // Figure 16 NPU/CPU overlap; the functional backend's double-buffered logits are the
  // enabling mechanism). A step with >= 2 occupied rows is charged
  // max(npu_s, lm_head_s) + comm_s instead of the serial sum; singleton steps — and
  // backends whose cost carries no lm_head/NPU split — always charge serially. The charged
  // value is applied uniformly to makespan, decode time, energy and the step-latency
  // histogram (docs/threading_model.md has the full accounting rule).
  bool overlap_lm_head = true;
  // Allow admission to pause a running strictly-lower-priority decode when the slot pool is
  // full (continuous policy only). The victim is the decoding job with the lowest priority
  // (ties: most tokens remaining, then highest slot) and it re-enters the admission queue
  // at its own priority, resuming from its retained KV when a slot frees.
  bool enable_preemption = false;
  // Speculative-decoding gamma policy (docs/speculative_decoding.md). -1 uses the backend's
  // configured gamma as-is; 0 disables speculation for the whole run (every job decodes
  // plainly, even with ServeJob::speculative set); > 0 caps the per-cycle draft length at
  // min(spec_gamma, backend gamma). Per row the batcher further caps gamma at
  // remaining - 1, so a cycle can never commit past the job's decode budget (and the final
  // token of every job is produced by a plain-position row).
  int spec_gamma = -1;
};

// One admission record (job -> slot binding), in admission order. Resumed jobs admit again
// (resumed = true), so a preempted job appears once per resume.
struct Admission {
  int job_id = 0;
  int slot = 0;
  int64_t step = 0;    // index of the first decode step the job participates in
  double time_s = 0.0; // makespan after the admission's prefill charge
  bool resumed = false;
};

struct Completion {
  int job_id = 0;
  int slot = 0;
  int64_t step = 0;    // index of the decode step that produced the job's last token
  double time_s = 0.0;
};

struct ScheduleResult {
  // Non-empty when the job stream was rejected (invalid fields, fork graph violations, or a
  // KV budget too small to make progress). All other fields are meaningless then — the old
  // behavior was a CHECK-abort; malformed input now reports instead of crashing.
  std::string error;
  double makespan_s = 0.0;
  double prefill_s = 0.0;          // time spent in charged chunked-prefill admissions
  double decode_s = 0.0;           // time spent in decode steps
  double idle_s = 0.0;             // clock advanced with no work (live mode arrival gaps)
  double tokens_per_second = 0.0;  // useful decoded tokens / makespan
  double avg_active_batch = 0.0;   // mean useful (non-padding) rows per step
  double avg_context = 0.0;        // mean per-row KV length over all stepped rows
  double slot_utilization = 0.0;   // useful rows / occupied rows (padding discounts this)
  double energy_j = 0.0;           // sum over steps of watts x step seconds
  int64_t steps = 0;
  int64_t decoded_tokens = 0;      // useful tokens only (padding rows don't count)
  int64_t prefilled_tokens = 0;    // charged prefill tokens (shared prompts charge once)
  int64_t forked_admissions = 0;   // jobs admitted by mapping a parent's retained KV
  int64_t admission_deferrals = 0; // admissions pushed back because the KV pool was full
  int64_t preemptions = 0;         // decodes paused to admit higher-priority work
  int64_t resumes = 0;             // paused decodes re-admitted from retained KV
  // Speculative decoding (docs/speculative_decoding.md; all zero when no cycle drafted).
  // A cycle = gamma draft steps + one batched multi-row verify, charged as one step.
  int64_t spec_cycles = 0;           // decode steps that ran as speculative cycles
  int64_t spec_proposed_tokens = 0;  // draft proposals verified (sum of per-row gammas)
  int64_t spec_accepted_tokens = 0;  // proposals the target accepted (committed - bonus)
  // Tiered KV offload (docs/long_context.md; both zero when no step touched the flash
  // tier): flash traffic the run's decode steps generated, and the seconds it cost the
  // tier. Only the non-overlapped stall portion is inside decode_s/makespan_s.
  double flash_s = 0.0;
  int64_t flash_bytes = 0;
  // Physical-vs-logical KV accounting at the end of the run (peaks cover the whole run):
  // physical bytes are what the paged pool actually held, logical bytes what a dense
  // per-sequence layout would have held; kv.sharing_ratio() is the headline saving.
  hkv::KvStats kv;
  std::vector<Admission> admissions;
  std::vector<Completion> completions;
  std::vector<int> step_active;    // record_steps: useful rows per step
  std::vector<int> step_occupied;  // record_steps: occupied rows per step
  // Functional backends: tokens each job generated, indexed by the job's position in the
  // submission order (empty for pricing-only backends).
  std::vector<std::vector<int>> job_tokens;
  hrt::TraceBuilder trace;         // record_trace: per-step lanes + admissions
  // The run's full metrics snapshot (docs/metrics_schema.md): serve.* counters/gauges that
  // mirror the scalar fields above, serve.step_seconds / serve.step_active_rows histograms,
  // kv.* from the KV accountant, and — for the functional backend — the simulated device's
  // hexsim.* activity profile. Populated on every return path, including error results.
  obs::MetricsSnapshot metrics;
};

// What one Step() call did, for event-driven callers (the frontend streams tokens and
// tracks per-request latency from these).
struct StepEvents {
  struct Token {
    int job_id = 0;
    int token = 0;
    double time_s = 0.0;  // clock when the token became available (end of its step)
  };
  bool stepped = false;             // a decode step ran (at least one slot occupied)
  double time_s = 0.0;              // clock after the call
  std::vector<int> admitted;        // job ids admitted this call (includes resumes)
  std::vector<int> paused;          // job ids preempted this call
  std::vector<int> completed;       // job ids that produced their last token this call
  // Token-producing backends: one entry per useful-row token — usually one per row, but a
  // speculative cycle commits up to gamma+1 tokens per row in stream order.
  std::vector<Token> tokens;
};

class ContinuousBatcher {
 public:
  ContinuousBatcher(ExecutionBackend& backend, const ServeOptions& options);

  // --- batch mode -------------------------------------------------------------------
  // Runs every job to completion and returns the aggregate schedule. An empty job list
  // yields a zeroed result (no NaNs). Jobs must each decode at least one token. Resets any
  // in-progress live state; equivalent to Reset + Submit each + Step until drained +
  // Finish, plus whole-stream validation (fork graph, barrier waves).
  ScheduleResult Run(const std::vector<ServeJob>& jobs);

  // --- live mode --------------------------------------------------------------------
  // Validates and enqueues one job (state kQueued). Returns false (setting *error) on a
  // malformed job; a fork parent must already be kDone with retained KV. Live submissions
  // must use barrier 0 — expansion waves only exist in batched streams — and ids must be
  // unique across the run.
  bool Submit(const ServeJob& job, std::string* error = nullptr);

  // Admits every admissible queued job (possibly preempting), then advances the world by
  // one decode step. With nothing occupied and nothing admissible, returns with
  // stepped = false (the caller advances the clock to the next arrival). A KV budget that
  // cannot fit the front job even into an empty batch poisons the run (see
  // ScheduleResult::error on Finish); subsequent Steps are no-ops.
  StepEvents Step();

  // Preempts a decoding job: its KV stays resident behind a retained handle, its slot
  // frees this instant, and (requeue = true) it re-enters the admission queue at its own
  // priority. With requeue = false the job stays kPaused until ResumeJob. Returns false if
  // the job is not currently decoding.
  bool PauseJob(int job_id, bool requeue = true);

  // Re-enqueues a job paused with requeue = false. Returns false unless kPaused.
  bool ResumeJob(int job_id);

  // Advances the clock with no work performed (live mode: the gap to the next arrival).
  void AdvanceTime(double seconds);

  // Drops the retained-KV handle of a completed retain_kv job (e.g. a superseded session
  // turn). No-op if nothing is retained under the id.
  void ReleaseRetained(int job_id);

  // Pins a prompt_group's prompt anchor past its jobs' completion: Complete() skips the
  // automatic ReleaseGroup when the group's last job finishes, so the anchored prefix stays
  // resident for FUTURE submissions of the same group (the fleet PrefixRegistry's per-device
  // residency — docs/fleet.md). May be called before any job of the group is submitted;
  // cleared by Reset.
  void PinGroup(int prompt_group);

  // Evicts a (typically pinned) group's prompt anchor: drops the backend's anchor handle,
  // unpins the group, and resets its charged flag so the NEXT admission re-prefills (and
  // re-charges) the prefix from scratch. Jobs currently decoding against the anchor are
  // unaffected (their own block references keep the shared pages alive). No-op for an
  // unknown group.
  void EvictGroup(int prompt_group);

  // Finalizes the run: aggregate rates, KV stats, metrics snapshot. The batcher resets on
  // the next Submit/Run.
  ScheduleResult Finish();

  // --- introspection ----------------------------------------------------------------
  bool HasWork() const { return !ready_.empty() || occupied_ > 0 || paused_unqueued_ > 0; }
  double now_s() const { return r_.makespan_s; }
  int free_slots() const { return static_cast<int>(free_slots_.size()); }
  JobState job_state(int job_id) const;
  // Per-run metrics registry; the frontend registers its serve.ttft/serve.tpot histograms
  // here so the Finish() snapshot carries them. References are invalidated by Reset/Run.
  obs::Registry& registry() { return reg_; }

  // Clears all run state (implicit on Run, and on the first Submit after Finish).
  void Reset();

 private:
  struct JobRec {
    ServeJob job;
    JobState state = JobState::kQueued;
    int group = -1;      // groups_ index
    int slot = -1;       // valid while kDecoding
    int context = 0;     // current KV length while kDecoding / kPaused
    int remaining = 0;   // useful tokens still to decode
    int parent_index = -1;  // jobs_ index of the fork parent, -1 = none
    bool retained = false;  // a retained handle lives under job.id
  };

  struct Group {
    std::vector<std::pair<int, std::vector<int>>> levels;  // (barrier, job indices) ascending
    size_t cur = 0;
    int pending = 0;   // incomplete jobs at the current level
    int orig_id = -1;  // prompt_group id (keys the backend's prompt anchor), -1 = singleton
    int total = 0;
    int done = 0;      // completed jobs; == total releases the group's prompt anchor
  };

  struct Slot {
    int job = -1;       // jobs_ index, -1 when free
    int context = 0;    // current KV length
    int remaining = 0;  // useful tokens still to decode (0 => padding row in a static wave)
  };

  // Admission-queue entry: (-priority, sequence) orders by priority descending, then
  // submission/requeue order — deterministic at any thread count.
  struct ReadyEntry {
    int neg_priority = 0;
    int64_t seq = 0;
    int job = 0;         // jobs_ index
    bool resume = false; // re-admission of a paused job (maps retained KV, zero prefill)
    bool operator<(const ReadyEntry& o) const {
      return neg_priority != o.neg_priority ? neg_priority < o.neg_priority : seq < o.seq;
    }
  };

  // Registers a job into jobs_/groups_/id_index_ (shared by Run and Submit). Returns the
  // jobs_ index.
  int Register(const ServeJob& job);
  // Pushes a job (or a paused job's resume) into the admission queue.
  void Enqueue(int job_index, bool resume);
  // Admission pass: admits queued jobs into free slots (preempting when allowed), honoring
  // the schedule policy. Appends admitted/paused job ids to `ev`.
  void AdmitReady(StepEvents& ev);
  // Binds the ready entry to a free slot (fresh, fork, or resume admission).
  void Admit(const ReadyEntry& entry, StepEvents& ev);
  // Shared pause path; `requeue` re-enqueues for automatic resume.
  void PauseSlotInternal(int slot, bool requeue, StepEvents* ev);
  // Completion bookkeeping for the job in `slot` (retention, group barriers, reclamation).
  void Complete(int slot, StepEvents& ev);
  // Marks the run failed (live mode surfaces the error on Finish).
  void Poison(const std::string& error);
  void FinalizeMetrics();

  ExecutionBackend& backend_;
  ServeOptions options_;

  // --- per-run state (cleared by Reset) ---
  ScheduleResult r_;
  std::vector<JobRec> jobs_;
  std::vector<Group> groups_;
  std::map<int, int> group_index_;  // prompt_group id -> groups_ index
  std::map<int, int> id_index_;     // job id -> jobs_ index
  bool ids_unique_ = true;          // duplicate ids allowed in fork-free batch streams
  std::set<ReadyEntry> ready_;
  int64_t ready_seq_ = 0;
  std::vector<Slot> slots_;
  std::vector<int> free_slots_;
  std::vector<bool> group_charged_;           // indexed like groups_
  std::set<int> pinned_groups_;               // prompt_group ids exempt from auto-release
  std::vector<int> pending_children_;         // batch mode: children awaiting each job's KV
  int occupied_ = 0;
  int completed_ = 0;
  int paused_unqueued_ = 0;  // kPaused jobs awaiting an explicit ResumeJob
  int64_t step_idx_ = 0;
  int64_t useful_rows_ = 0;
  int64_t occupied_rows_ = 0;
  int64_t context_row_sum_ = 0;
  int traced_steps_ = 0;
  int traced_admissions_ = 0;
  double overlap_saved_s_ = 0.0;
  double overlap_lm_s_ = 0.0;
  bool poisoned_ = false;
  bool finished_ = true;  // a fresh batcher needs a Reset before accepting work
  obs::Registry reg_;
  obs::Histogram* step_seconds_hist_ = nullptr;
  obs::Histogram* step_active_hist_ = nullptr;
  // Step scratch (reused across steps).
  std::vector<int> row_slots_;
  std::vector<int> row_contexts_;
  std::vector<int> row_gammas_;  // per-row speculative draft lengths (0 = plain row)
};

}  // namespace hserve

#endif  // SRC_SERVING_CONTINUOUS_BATCHER_H_

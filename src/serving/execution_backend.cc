#include "src/serving/execution_backend.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "src/base/check.h"
#include "src/base/math_util.h"
#include "src/hexsim/rpcmem.h"
#include "src/kernels/attention.h"
#include "src/kernels/lm_head.h"
#include "src/llm/sampling.h"

namespace hserve {

namespace {

// Per-row contexts are priced at their mean, rounded UP to the bucket boundary so pricing
// never undershoots the true mean and stays monotone as contexts grow.
int ContextBucket(std::span<const int> contexts, int bucket_tokens) {
  int64_t sum = 0;
  for (int c : contexts) {
    HEXLLM_DCHECK(c >= 0);
    sum += c;
  }
  const int64_t mean = hexllm::CeilDiv(sum, static_cast<int64_t>(contexts.size()));
  return static_cast<int>(hexllm::RoundUp(std::max<int64_t>(mean, 1), bucket_tokens));
}

// Deterministic synthetic token at absolute position `pos` of job `job_id`'s context, so a
// job's context reproduces token-for-token however it is (re)materialized.
int SyntheticToken(int job_id, int pos, int vocab) {
  return static_cast<int>(
      (static_cast<uint32_t>(job_id) * 2654435761u + 13u * static_cast<uint32_t>(pos) + 7u) %
      static_cast<uint32_t>(vocab));
}

}  // namespace

int SpecGammaFromEnv(int configured) {
  const char* env = std::getenv("HEXLLM_SPEC_GAMMA");
  if (env == nullptr || *env == '\0') {
    return std::max(0, configured);
  }
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) {
    return std::max(0, configured);
  }
  return static_cast<int>(v);
}

// ---------------------------------------------------------------------------
// AnalyticBackend
// ---------------------------------------------------------------------------

AnalyticBackend::AnalyticBackend(const hrt::Engine& engine, const Options& options)
    : engine_(engine),
      bucket_tokens_(std::max(1, options.context_bucket_tokens)),
      draft_engine_(options.draft_engine),
      spec_gamma_(options.draft_engine != nullptr ? SpecGammaFromEnv(options.spec_gamma) : 0),
      spec_acceptance_(std::clamp(options.spec_acceptance, 0.0, 1.0)),
      spec_rng_(options.spec_seed),
      // Unbounded accountant: the DRAM budget gates admission (CanAdmit), it never aborts
      // mid-decode. bytes_per_block is the model's true K+V footprint for one block under
      // the configured KV dtype, so a budget admits proportionally more sequences when KV
      // is quantized — the same arithmetic the functional cache applies to its storage.
      kv_(options.kv_block_tokens, /*max_blocks=*/0,
          engine.options().model->KvCacheBytes(options.kv_block_tokens,
                                               hquant::KvDtypeFromEnv(options.kv_dtype),
                                               options.kv_quant_group)),
      kv_dtype_(hquant::KvDtypeFromEnv(options.kv_dtype)),
      offload_blocks_(std::max<int64_t>(0, options.kv_offload_resident_blocks)),
      bytes_per_block_(engine.options().model->KvCacheBytes(
          options.kv_block_tokens, hquant::KvDtypeFromEnv(options.kv_dtype),
          options.kv_quant_group)),
      flash_(hexsim::FlashSpecFromEnv(options.flash)),
      window_(hkern::AttnWindowFromEnv(options.attn_window)) {
  window_.block_tokens = options.kv_block_tokens;
  if (options.kv_budget_bytes > 0) {
    budget_blocks_ = options.kv_budget_bytes / bytes_per_block_;
  }
}

int AnalyticBackend::EffectiveContext(int context) const {
  // A windowed row attends at most sinks + window + its own block; everything between is
  // masked, never staged, never priced (mirrors the kernel's chunk skip).
  return window_.enabled() ? std::min(context, window_.ResidentTokens()) : context;
}

void AnalyticBackend::ChargeOffload(std::span<const int> contexts, hrt::StepCost* cost) {
  if (offload_blocks_ <= 0) {
    return;
  }
  // Every attended block beyond the DRAM-resident budget streams from the flash tier this
  // step. The read overlaps the step's NPU compute (the prefetch queue runs ahead of the
  // kv chunk loop); only the excess over the compute window stalls the step.
  int64_t attended = 0;
  for (const int c : contexts) {
    attended += hexllm::CeilDiv(EffectiveContext(c) + 1, kv_.block_tokens());
  }
  const int64_t excess = attended - offload_blocks_;
  if (excess <= 0) {
    return;
  }
  const int64_t bytes = excess * bytes_per_block_;
  const double read_s = flash_.ChargeRead(bytes);
  cost->flash_s += read_s;
  cost->flash_bytes += bytes;
  const double npu_s = cost->total_s - cost->lm_head_s - cost->comm_s;
  const double stall = std::max(0.0, read_s - std::max(npu_s, 0.0));
  offload_stall_s_ += stall;
  cost->total_s += stall;
}

void AnalyticBackend::ExportMetrics(obs::Registry& registry) const {
  // Quantized modes publish the active dtype (value = bits per element, label = name) so
  // analytic reports carry the same `kv.dtype` series as functional runs. F16 exports
  // nothing extra, keeping legacy metric snapshots byte-identical. The analytic path never
  // materializes K/V values, so there is no round-trip error proxy here — accuracy figures
  // come from the capability model (hcap::CapabilityModel::AttentionErr).
  if (kv_dtype_ != hquant::KvDtype::kF16) {
    registry.Set("kv.dtype", static_cast<double>(hquant::KvDtypeBits(kv_dtype_)),
                 hquant::KvDtypeName(kv_dtype_));
  }
  // Speculative runs publish the rollback counter (docs/metrics_schema.md); plain runs
  // export nothing extra, keeping legacy metric snapshots byte-identical.
  if (spec_cycles_ > 0) {
    registry.Count("spec.rollback_blocks", spec_rollback_blocks_);
  }
  // Offload/window series mirror the functional backend's kv.offload.* / attn.window.*
  // exports with the subset the analytic model tracks (it prices flash reads in bulk, it
  // never demotes individual blocks). Gated so legacy snapshots stay byte-identical.
  if (offload_blocks_ > 0) {
    const hexsim::FlashStats& fs = flash_.stats();
    registry.Count("kv.offload.flash_read_bytes", fs.read_bytes);
    registry.Set("kv.offload.flash_read_seconds", fs.read_seconds);
    registry.Set("kv.offload.stall_seconds", offload_stall_s_);
    registry.Set("kv.offload.resident_block_budget", static_cast<double>(offload_blocks_));
  }
  if (window_.enabled()) {
    registry.Set("attn.window.sink_blocks", static_cast<double>(window_.sink_blocks));
    registry.Set("attn.window.window_blocks", static_cast<double>(window_.window_blocks));
    registry.Set("attn.window.resident_tokens",
                 static_cast<double>(window_.ResidentTokens()));
  }
}

int AnalyticBackend::max_context() const { return engine_.options().context_budget; }

void AnalyticBackend::TrackSlot(int slot, int end_len) {
  HEXLLM_CHECK(slot >= 0);
  if (slot >= static_cast<int>(end_len_.size())) {
    end_len_.resize(static_cast<size_t>(slot) + 1, 0);
  }
  end_len_[static_cast<size_t>(slot)] = end_len;
}

int AnalyticBackend::SharedPrefixLen(const ServeJob& job, int context_tokens) const {
  if (job.parent_job >= 0) {
    const auto it = retained_.find(job.parent_job);
    return it != retained_.end() ? std::min(it->second.len, context_tokens) : 0;
  }
  if (GroupPrefixLen(job) > 0) {
    const auto it = anchors_.find(job.prompt_group);
    if (it != anchors_.end()) {
      return std::min({it->second.len, GroupPrefixLen(job), context_tokens});
    }
  }
  return 0;
}

bool AnalyticBackend::CanAdmit(const ServeJob& job, int context_tokens) {
  if (budget_blocks_ < 0) {
    return true;
  }
  if (offload_blocks_ > 0) {
    // Tiered offload: DRAM holds only the resident working set and the flash store backs
    // everything else, so the DRAM budget no longer gates admission — the cost shows up as
    // flash traffic and stall in ChargeOffload instead of a rejection here.
    return true;
  }
  // With a sliding window only sinks + window + the active block must ever be resident;
  // the masked interior could live anywhere (or nowhere), so admission prices the capped
  // working set instead of the full context.
  const int64_t resident_cap =
      window_.enabled()
          ? hexllm::CeilDiv(window_.ResidentTokens(), window_.block_tokens) + 1
          : INT64_MAX;
  const int64_t needed =
      std::min(resident_cap, kv_.BlocksToAdmit(context_tokens + job.decode_tokens,
                                               SharedPrefixLen(job, context_tokens)));
  // Reserve worst-case growth (plus a pending CoW tail split) for every running slot, so an
  // admission never starves a slot that already committed to decode to its end length.
  int64_t reserved = 0;
  for (size_t s = 0; s < end_len_.size(); ++s) {
    if (end_len_[s] <= 0) {
      continue;
    }
    const int64_t want = hexllm::CeilDiv(end_len_[s], kv_.block_tokens());
    const int64_t growth =
        std::min(resident_cap, std::max<int64_t>(0, want - kv_.table_blocks(static_cast<int>(s))));
    reserved += growth + (kv_.TailShared(static_cast<int>(s)) ? 1 : 0);
  }
  const int64_t free = budget_blocks_ - kv_.stats().physical_blocks;
  return free - reserved >= needed;
}

double AnalyticBackend::AdmitSlot(int slot, const ServeJob& job, int context_tokens,
                                  int charged_prefill_tokens) {
  kv_.Reset(slot, nullptr);
  TrackSlot(slot, context_tokens + job.decode_tokens);

  if (job.parent_job >= 0) {
    // Fork: map the parent's retained stem copy-on-write — no token of it is re-prefilled.
    // Tokens PAST the parent's length (a session's new turn) append fresh and run through
    // the charged chunked prefill below.
    const auto it = retained_.find(job.parent_job);
    HEXLLM_CHECK_MSG(it != retained_.end(), "fork admitted before its parent was retained");
    const int shared = it->second.len;
    HEXLLM_CHECK_MSG(shared <= context_tokens,
                     "fork context must cover the parent's final KV length");
    kv_.ShareFromHandle(it->second.handle, slot, shared);
    for (int pos = shared; pos < context_tokens; ++pos) {
      kv_.EnsureWritable(slot, pos);
      kv_.Advance(slot);
    }
    if (charged_prefill_tokens <= 0) {
      return 0.0;
    }
    auto [pit, inserted] = prefill_cache_.try_emplace(charged_prefill_tokens, 0.0);
    if (inserted) {
      pit->second = engine_.Prefill(charged_prefill_tokens).total_s;
    }
    return pit->second;
  }

  // Map the group's shared prompt prefix when it is already resident; account the rest as
  // freshly appended blocks (the chunked prefill the charged pricing below models).
  int shared = 0;
  bool make_anchor = false;
  if (GroupPrefixLen(job) > 0) {
    const auto it = anchors_.find(job.prompt_group);
    if (it != anchors_.end()) {
      shared = std::min({it->second.len, GroupPrefixLen(job), context_tokens});
      kv_.ShareFromHandle(it->second.handle, slot, shared);
    } else {
      make_anchor = true;
    }
  }
  for (int pos = shared; pos < context_tokens; ++pos) {
    kv_.EnsureWritable(slot, pos);
    kv_.Advance(slot);
  }
  if (make_anchor) {
    const int len = std::min(GroupPrefixLen(job), context_tokens);
    anchors_.emplace(job.prompt_group, Retained{kv_.Retain(slot, len), len});
  }

  if (charged_prefill_tokens <= 0) {
    return 0.0;
  }
  auto [it, inserted] = prefill_cache_.try_emplace(charged_prefill_tokens, 0.0);
  if (inserted) {
    it->second = engine_.Prefill(charged_prefill_tokens).total_s;
  }
  return it->second;
}

void AnalyticBackend::ReleaseSlot(int slot) {
  kv_.Reset(slot, nullptr);
  TrackSlot(slot, 0);
}

void AnalyticBackend::RetainKv(int slot, int job_id) {
  const auto [it, inserted] =
      retained_.emplace(job_id, Retained{kv_.Retain(slot, -1), kv_.length(slot)});
  HEXLLM_CHECK_MSG(inserted, "job retained twice");
}

void AnalyticBackend::DropRetained(int job_id) {
  const auto it = retained_.find(job_id);
  HEXLLM_CHECK(it != retained_.end());
  kv_.DropHandle(it->second.handle, nullptr);
  retained_.erase(it);
}

void AnalyticBackend::ReleaseGroup(int prompt_group) {
  const auto it = anchors_.find(prompt_group);
  if (it == anchors_.end()) {
    return;
  }
  kv_.DropHandle(it->second.handle, nullptr);
  anchors_.erase(it);
}

void AnalyticBackend::PauseSlot(int slot, int job_id) {
  const auto [it, inserted] = paused_.emplace(
      job_id, Paused{kv_.Retain(slot, -1), kv_.length(slot), end_len_[static_cast<size_t>(slot)]});
  HEXLLM_CHECK_MSG(inserted, "job paused twice");
  kv_.Reset(slot, nullptr);
  TrackSlot(slot, 0);
}

void AnalyticBackend::ResumeSlot(int slot, int job_id, int context_tokens) {
  const auto it = paused_.find(job_id);
  HEXLLM_CHECK_MSG(it != paused_.end(), "resume of a job that was never paused");
  HEXLLM_CHECK(it->second.len == context_tokens);
  // Map the snapshot back, then drop the handle: the slot's own block references keep every
  // page alive, and with the handle gone the tail block's refcount returns to 1 — the next
  // append extends it in place with NO copy-on-write split, exactly as if the job had never
  // been paused. That is what keeps block statistics identical to an un-preempted run.
  kv_.ShareFromHandle(it->second.handle, slot, context_tokens);
  kv_.DropHandle(it->second.handle, nullptr);
  TrackSlot(slot, it->second.end_len);
  paused_.erase(it);
}

bool AnalyticBackend::CanResume(int job_id) {
  if (budget_blocks_ < 0 || offload_blocks_ > 0) {
    return true;  // see CanAdmit: the flash tier backs any overflow
  }
  const auto it = paused_.find(job_id);
  HEXLLM_CHECK_MSG(it != paused_.end(), "resume of a job that was never paused");
  // The paused pages are already resident; only growth to the committed end length needs
  // headroom (plus one block of tail slack, mirroring CanAdmit's reservation rule).
  const int64_t needed =
      hexllm::CeilDiv(it->second.end_len, kv_.block_tokens()) -
      hexllm::CeilDiv(it->second.len, kv_.block_tokens()) + 1;
  int64_t reserved = 0;
  for (size_t s = 0; s < end_len_.size(); ++s) {
    if (end_len_[s] <= 0) {
      continue;
    }
    const int64_t want = hexllm::CeilDiv(end_len_[s], kv_.block_tokens());
    reserved += std::max<int64_t>(0, want - kv_.table_blocks(static_cast<int>(s))) +
                (kv_.TailShared(static_cast<int>(s)) ? 1 : 0);
  }
  const int64_t free = budget_blocks_ - kv_.stats().physical_blocks;
  return free - reserved >= needed;
}

const hrt::StepCost& AnalyticBackend::BucketedCost(int batch, int context) {
  const int bucket =
      static_cast<int>(hexllm::RoundUp(std::max(context, 1), bucket_tokens_));
  const auto key = std::make_pair(batch, bucket);
  auto it = step_cache_.find(key);
  if (it == step_cache_.end()) {
    const hrt::StepCost cost = engine_.DecodeStep(batch, bucket);
    const bool gpu = engine_.options().backend == hrt::Backend::kGpuOpenCl;
    const double watts = hrt::StepPower(*engine_.options().device, cost, batch, gpu).watts;
    it = step_cache_.emplace(key, std::make_pair(cost, watts)).first;
  }
  return it->second.first;
}

StepOutcome AnalyticBackend::Step(std::span<const int> slots, std::span<const int> contexts) {
  HEXLLM_CHECK(!slots.empty() && slots.size() == contexts.size());
  const int batch = static_cast<int>(slots.size());
  // Attention cost scales with the ATTENDED context: a sliding window caps every row at its
  // resident token count (the kernel skips masked chunks), so pricing buckets the effective
  // contexts, not the raw ones.
  eff_contexts_.clear();
  for (const int c : contexts) {
    eff_contexts_.push_back(EffectiveContext(c));
  }
  const int bucket = ContextBucket(eff_contexts_, bucket_tokens_);
  // Mirror the functional backend's KV appends exactly (one position per row), so the two
  // backends report bit-identical block statistics for one job stream.
  for (size_t i = 0; i < slots.size(); ++i) {
    HEXLLM_DCHECK(kv_.length(slots[i]) == contexts[i]);
    kv_.EnsureWritable(slots[i], contexts[i]);
    kv_.Advance(slots[i]);
  }
  StepOutcome out;
  out.cost = BucketedCost(batch, bucket);
  out.watts = step_cache_.at(std::make_pair(batch, bucket)).second;
  ChargeOffload(contexts, &out.cost);
  return out;
}

const hrt::StepCost& AnalyticBackend::DraftCost(int batch, int context_bucket) {
  const auto key = std::make_pair(batch, context_bucket);
  auto it = draft_step_cache_.find(key);
  if (it == draft_step_cache_.end()) {
    it = draft_step_cache_.emplace(key, draft_engine_->DecodeStep(batch, context_bucket))
             .first;
  }
  return it->second;
}

StepOutcome AnalyticBackend::SpeculativeStep(std::span<const int> slots,
                                             std::span<const int> contexts,
                                             std::span<const int> gammas) {
  HEXLLM_CHECK(!slots.empty() && slots.size() == contexts.size() &&
               slots.size() == gammas.size());
  int max_gamma = 0;
  int64_t verify_rows = 0;
  for (const int g : gammas) {
    HEXLLM_CHECK(g >= 0);
    max_gamma = std::max(max_gamma, g);
    verify_rows += g + 1;
  }
  if (max_gamma == 0 || draft_engine_ == nullptr) {
    return Step(slots, contexts);
  }
  ++spec_cycles_;
  const int batch = static_cast<int>(slots.size());
  eff_contexts_.clear();
  for (const int c : contexts) {
    eff_contexts_.push_back(EffectiveContext(c));
  }
  const int bucket = ContextBucket(eff_contexts_, bucket_tokens_);

  // Cycle cost = gamma autoregressive draft steps (only rows still drafting batch into step
  // j) + ONE target step verifying all gamma+1 positions per row — the verify fills HMX
  // tile rows exactly like Best-of-N lanes, so it is priced as a verify_rows-row batched
  // step, charged once (src/tts/speculative.h's closed form, made operational).
  StepOutcome out;
  out.cost = BucketedCost(static_cast<int>(verify_rows), bucket);
  for (int j = 1; j <= max_gamma; ++j) {
    int batch_j = 0;
    for (const int g : gammas) {
      batch_j += g >= j ? 1 : 0;
    }
    const hrt::StepCost& d = DraftCost(batch_j, bucket);
    out.cost.linear_s += d.linear_s;
    out.cost.attention_s += d.attention_s;
    out.cost.misc_s += d.misc_s;
    out.cost.lm_head_s += d.lm_head_s;
    out.cost.comm_s += d.comm_s;
    out.cost.total_s += d.total_s;
    out.cost.hvx_busy_s += d.hvx_busy_s;
    out.cost.hmx_busy_s += d.hmx_busy_s;
    out.cost.dma_busy_s += d.dma_busy_s;
    out.cost.cpu_busy_s += d.cpu_busy_s;
    out.cost.gpu_busy_s += d.gpu_busy_s;
    out.cost.ddr_bytes += d.ddr_bytes;
    out.cost.flash_s += d.flash_s;
    out.cost.flash_bytes += d.flash_bytes;
  }
  // One offload charge per cycle: the verify step stages the full attended set once; the
  // draft model keeps its own (small) KV and never touches the flash tier.
  ChargeOffload(contexts, &out.cost);
  const bool gpu = engine_.options().backend == hrt::Backend::kGpuOpenCl;
  out.watts = hrt::StepPower(*engine_.options().device, out.cost, batch, gpu).watts;

  // Per-row acceptance from the geometric process, then the SAME block choreography the
  // functional backend performs: append all gamma+1 verify positions, roll the rejected
  // suffix back through the accountant's Truncate. Refcount/CoW invariants are exercised
  // identically (a shared tail CoW-splits on the first verify append, rollback drops only
  // whole last-owner tail blocks).
  out.row_token_counts.resize(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    const int slot = slots[static_cast<size_t>(i)];
    const int g = gammas[static_cast<size_t>(i)];
    HEXLLM_DCHECK(kv_.length(slot) == contexts[static_cast<size_t>(i)]);
    for (int p = 0; p <= g; ++p) {
      kv_.EnsureWritable(slot, contexts[static_cast<size_t>(i)] + p);
      kv_.Advance(slot);
    }
    int accepted = 0;
    while (accepted < g && spec_rng_.NextBool(spec_acceptance_)) {
      ++accepted;
    }
    const int committed = accepted + 1;  // accepted prefix + the target's own token
    if (committed < g + 1) {
      spec_rollback_blocks_ +=
          kv_.Truncate(slot, contexts[static_cast<size_t>(i)] + committed, nullptr);
    }
    out.row_token_counts[static_cast<size_t>(i)] = committed;
  }
  return out;
}

// ---------------------------------------------------------------------------
// FunctionalBackend
// ---------------------------------------------------------------------------

FunctionalBackend::FunctionalBackend(hexsim::NpuDevice& dev, const hllm::ModelWeights& weights,
                                     int max_batch, int max_context, int64_t kv_pool_blocks,
                                     hquant::KvDtype kv_dtype, int kv_quant_group)
    : FunctionalBackend(dev, weights, max_batch, max_context, kv_pool_blocks, kv_dtype,
                        kv_quant_group, SpecOptions{}) {}

FunctionalBackend::FunctionalBackend(hexsim::NpuDevice& dev, const hllm::ModelWeights& weights,
                                     int max_batch, int max_context, int64_t kv_pool_blocks,
                                     hquant::KvDtype kv_dtype, int kv_quant_group,
                                     const SpecOptions& spec)
    : dev_(dev),
      // A speculative verify pushes max_batch spans of gamma+1 rows through one forward, so
      // the transformer's scratch arena is sized for that row count up front.
      tf_(dev, weights, max_batch, max_context, kv_pool_blocks, kv_dtype, kv_quant_group,
          spec.draft != nullptr ? max_batch * (SpecGammaFromEnv(spec.gamma) + 1) : 0),
      max_context_(max_context),
      last_token_(static_cast<size_t>(max_batch), 1),
      sampler_opts_(static_cast<size_t>(max_batch)),
      sampler_rng_(static_cast<size_t>(max_batch), hexllm::Rng(0)),
      end_len_(static_cast<size_t>(max_batch), 0),
      spec_gamma_(spec.draft != nullptr ? SpecGammaFromEnv(spec.gamma) : 0) {
  const size_t verify_rows =
      static_cast<size_t>(max_batch) * (spec_gamma_ > 0 ? spec_gamma_ + 1 : 1);
  const size_t logits_elems = verify_rows * weights.config.vocab;
  logits_buf_[0].resize(logits_elems);
  logits_buf_[1].resize(logits_elems);
  if (spec.draft != nullptr && spec_gamma_ > 0) {
    HEXLLM_CHECK_MSG(spec.draft->config.vocab == weights.config.vocab,
                     "draft and target must share a vocabulary (acceptance compares ids)");
    draft_ = std::make_unique<hllm::Transformer>(dev, *spec.draft, max_batch, max_context,
                                                 /*kv_pool_blocks=*/0, kv_dtype,
                                                 kv_quant_group);
    spec_slot_.assign(static_cast<size_t>(max_batch), false);
    draft_carry_.assign(static_cast<size_t>(max_batch), -1);
    draft_prev_.assign(static_cast<size_t>(max_batch), 0);
    draft_logits_.resize(static_cast<size_t>(max_batch) * weights.config.vocab);
    spec_proposals_.resize(static_cast<size_t>(max_batch));
  }
}

void FunctionalBackend::ConfigureLongContext(const hkv::KvOffloadOptions& offload,
                                             const hkern::AttnWindowSpec& window) {
  // Env knobs (HEXLLM_ATTN_*_BLOCKS, HEXLLM_KV_OFFLOAD_GBPS) override the configured
  // values here, mirroring the AnalyticBackend constructor.
  tf_.SetAttentionWindow(hkern::AttnWindowFromEnv(window));
  if (offload.resident_block_budget > 0) {
    hkv::KvOffloadOptions opts = offload;
    opts.flash = hexsim::FlashSpecFromEnv(opts.flash);
    tf_.kv().ConfigureOffload(opts);
  }
}

hkv::KvOffloadStats FunctionalBackend::BeginOffloadStep() {
  hllm::KvCache& kv = tf_.kv();
  if (!kv.offload_enabled()) {
    return {};
  }
  hkv::KvOffloadEngine* off = kv.offload();
  // The previous forward's compute is the window the prefetches queued at its end
  // overlapped with: reads that fit inside it are free hits for this step's faults.
  off->AdvanceClock(last_npu_s_);
  off->BeginStep();
  return off->stats();
}

void FunctionalBackend::FoldOffload(const hkv::KvOffloadStats& mark, std::span<const int> slots,
                                    std::span<const int> contexts, double npu_s,
                                    hrt::StepCost* cost) {
  last_npu_s_ = npu_s;
  hllm::KvCache& kv = tf_.kv();
  if (!kv.offload_enabled()) {
    return;
  }
  hkv::KvOffloadEngine* off = kv.offload();
  // Write-behind demotion: shrink back to the resident budget now that the step's appends
  // landed. The flash writes charge the tier (and wear), not this step's critical path.
  off->EnforceBudget();
  // Queue async reads for each slot's predicted next-step attended set (decode advances
  // one position per step), so the reads overlap the next forward instead of stalling it.
  const hkern::AttnWindowSpec& win = tf_.attention_window();
  const hkern::AttnWindowSpec* winp = win.enabled() ? &win : nullptr;
  for (size_t i = 0; i < slots.size(); ++i) {
    prefetch_scratch_.clear();
    hkern::AppendAttendedBlocks(winp, /*q_len=*/1, /*kv_len=*/contexts[i] + 2,
                                /*q_pos_offset=*/-1, kv.block_tokens(), &prefetch_scratch_);
    kv.PrefetchTableBlocks(slots[i], prefetch_scratch_);
  }
  const hkv::KvOffloadStats& now = off->stats();
  const double stall = now.stall_seconds - mark.stall_seconds;
  cost->flash_s += (now.flash_read_seconds - mark.flash_read_seconds) +
                   (now.flash_write_seconds - mark.flash_write_seconds);
  cost->flash_bytes += (now.flash_read_bytes - mark.flash_read_bytes) +
                       (now.flash_write_bytes - mark.flash_write_bytes);
  cost->total_s += stall;  // only the non-overlapped remainder of the reads stalls the step
}

int FunctionalBackend::SharedPrefixLen(const ServeJob& job, int context_tokens) const {
  if (job.parent_job >= 0) {
    const auto it = retained_.find(job.parent_job);
    return it != retained_.end() ? std::min(it->second.len, context_tokens) : 0;
  }
  if (GroupPrefixLen(job) > 0) {
    const auto it = anchors_.find(job.prompt_group);
    if (it != anchors_.end()) {
      return std::min({it->second.len, GroupPrefixLen(job), context_tokens});
    }
  }
  return 0;
}

bool FunctionalBackend::CanAdmit(const ServeJob& job, int context_tokens) {
  const hllm::KvCache& kv = tf_.kv();
  const int64_t needed = kv.BlocksToAdmit(context_tokens + job.decode_tokens,
                                          SharedPrefixLen(job, context_tokens));
  int64_t reserved = 0;
  for (size_t s = 0; s < end_len_.size(); ++s) {
    if (end_len_[s] <= 0) {
      continue;
    }
    const int64_t want = hexllm::CeilDiv(end_len_[s], kv.block_tokens());
    reserved += std::max<int64_t>(0, want - kv.table_blocks(static_cast<int>(s))) +
                (kv.TailShared(static_cast<int>(s)) ? 1 : 0);
  }
  return kv.free_blocks() - reserved >= needed;
}

double FunctionalBackend::AdmitSlot(int slot, const ServeJob& job, int context_tokens,
                                    int charged_prefill_tokens) {
  return AdmitTarget(slot, job, context_tokens, charged_prefill_tokens) +
         AdmitDraft(slot, job.id, job.speculative, context_tokens);
}

double FunctionalBackend::AdmitDraft(int slot, int job_id, bool speculative,
                                     int context_tokens) {
  if (draft_ == nullptr) {
    return 0.0;
  }
  if (spec_slot_[static_cast<size_t>(slot)]) {
    draft_->kv().ResetSeq(slot);  // stale draft state from the slot's previous tenant
    spec_slot_[static_cast<size_t>(slot)] = false;
  }
  draft_carry_[static_cast<size_t>(slot)] = -1;
  if (!speculative) {
    return 0.0;
  }
  spec_slot_[static_cast<size_t>(slot)] = true;
  if (context_tokens == 0) {
    return 0.0;
  }
  // The draft conditions on the deterministic synthetic view of the job's context. For a
  // plainly-admitted prompt this IS the target's token stream; for shared/forked/resumed
  // contexts it may diverge — which only moves the acceptance rate, never the committed
  // tokens (those are always sampled from the target's own logits).
  const int vocab = draft_->config().vocab;
  std::vector<int> prompt(static_cast<size_t>(context_tokens));
  for (int i = 0; i < context_tokens; ++i) {
    prompt[static_cast<size_t>(i)] = SyntheticToken(job_id, i, vocab);
  }
  const hexsim::CycleLedger mark = dev_.ledger();
  draft_->Prefill(slot, prompt);
  hrt::StepCost cost;
  const double npu_s = ComposeStep(mark, /*batch=*/0, &cost);
  const int chunks = static_cast<int>(hexllm::CeilDiv(context_tokens, hkern::kAttnQTile));
  return npu_s + chunks * (2 * hexsim::NpuSession::kMailboxLatencySeconds + 30e-6);
}

double FunctionalBackend::AdmitTarget(int slot, const ServeJob& job, int context_tokens,
                                      int /*charged_prefill_tokens*/) {
  HEXLLM_CHECK(slot >= 0 && slot < static_cast<int>(last_token_.size()));
  HEXLLM_CHECK(context_tokens + job.decode_tokens <= max_context_);
  hllm::KvCache& kv = tf_.kv();
  kv.ResetSeq(slot);
  const hkv::KvOffloadStats omark = BeginOffloadStep();
  end_len_[static_cast<size_t>(slot)] = context_tokens + job.decode_tokens;
  // Per-request sampling policy, seeded at admission. Sampling is consumed on the
  // bookkeeping thread in Step, so the token stream is deterministic at any thread count.
  sampler_opts_[static_cast<size_t>(slot)] = job.sampler;
  sampler_rng_[static_cast<size_t>(slot)] = hexllm::Rng(job.seed);
  const int vocab = tf_.config().vocab;

  if (job.parent_job >= 0) {
    // Fork: the child's KV starts as the parent's retained stem, mapped block-for-block
    // (the first divergent append copy-on-write splits the tail; none of it is
    // re-prefilled). Tokens PAST the parent's length — a dialog session's new turn — are
    // fresh and run through the chunked prefill like any prompt.
    const auto it = retained_.find(job.parent_job);
    HEXLLM_CHECK_MSG(it != retained_.end(), "fork admitted before its parent was retained");
    const int shared = it->second.len;
    HEXLLM_CHECK_MSG(shared <= context_tokens,
                     "fork context must cover the parent's final KV length");
    kv.ShareFromHandle(it->second.handle, slot, shared);
    const int fresh = context_tokens - shared;
    if (fresh == 0) {
      last_token_[static_cast<size_t>(slot)] = it->second.last_token;
      return 0.0;
    }
    std::vector<int> prompt(static_cast<size_t>(fresh));
    for (int i = 0; i < fresh; ++i) {
      prompt[static_cast<size_t>(i)] = SyntheticToken(job.id, shared + i, vocab);
    }
    const hexsim::CycleLedger mark = dev_.ledger();
    tf_.Prefill(slot, prompt);
    last_token_[static_cast<size_t>(slot)] = prompt.back();
    hrt::StepCost cost;
    const double npu_s = ComposeStep(mark, /*batch=*/0, &cost);
    // Demote the freshly-admitted context down to the resident budget and absorb any
    // prefill fault stall (cost.total_s carries only the FoldOffload stall here).
    FoldOffload(omark, std::span<const int>(&slot, 1),
                std::span<const int>(&context_tokens, 1), npu_s, &cost);
    const int chunks = static_cast<int>(hexllm::CeilDiv(fresh, hkern::kAttnQTile));
    return npu_s + cost.total_s +
           chunks * (2 * hexsim::NpuSession::kMailboxLatencySeconds + 30e-6);
  }
  if (context_tokens == 0) {
    // Nothing to prefill: decode starts from a fixed BOS-like token.
    last_token_[static_cast<size_t>(slot)] = 1 % vocab;
    return 0.0;
  }

  // Map the group's prompt prefix if a previous admission materialized it — later samples
  // of the group attend to the SAME physical prompt KV the first sample prefilled (stored
  // once). Only the remainder (a beam prefix, or a whole prompt on the group's first
  // admission) runs through the chunked prefill pipeline.
  const Retained* anchor = nullptr;
  int shared = 0;
  if (GroupPrefixLen(job) > 0) {
    const auto it = anchors_.find(job.prompt_group);
    if (it != anchors_.end()) {
      anchor = &it->second;
      shared = std::min({anchor->len, GroupPrefixLen(job), context_tokens});
      kv.ShareFromHandle(anchor->handle, slot, shared);
    }
  }
  const int fresh = context_tokens - shared;
  double admit_s = 0.0;
  if (fresh > 0) {
    // Synthetic but deterministic per (job, absolute position), so reruns reproduce
    // token-for-token. The group's prompt positions use the first-admitted job's tokens
    // (they are the shared prefix); positions past `shared` use this job's.
    std::vector<int> prompt(static_cast<size_t>(fresh));
    for (int i = 0; i < fresh; ++i) {
      prompt[static_cast<size_t>(i)] = SyntheticToken(job.id, shared + i, vocab);
    }
    const hexsim::CycleLedger mark = dev_.ledger();
    tf_.Prefill(slot, prompt);
    last_token_[static_cast<size_t>(slot)] = prompt.back();
    // Prefill's critical path: overlapped engine busy time plus one mailbox round trip per
    // 32-token chunk (mirrors Engine::Prefill's comm model). No lm_head — logits discarded.
    hrt::StepCost cost;
    const double npu_s = ComposeStep(mark, /*batch=*/0, &cost);
    FoldOffload(omark, std::span<const int>(&slot, 1),
                std::span<const int>(&context_tokens, 1), npu_s, &cost);
    const int chunks = static_cast<int>(hexllm::CeilDiv(fresh, hkern::kAttnQTile));
    admit_s = npu_s + cost.total_s +
              chunks * (2 * hexsim::NpuSession::kMailboxLatencySeconds + 30e-6);
  } else {
    last_token_[static_cast<size_t>(slot)] = anchor->last_token;
  }
  if (anchor == nullptr && GroupPrefixLen(job) > 0) {
    // First admission of the group: retain the prompt prefix so every later sample maps it.
    const int len = std::min(GroupPrefixLen(job), context_tokens);
    anchors_.emplace(job.prompt_group,
                     Retained{kv.Retain(slot, len), len, SyntheticToken(job.id, len - 1, vocab)});
  }
  return admit_s;
}

void FunctionalBackend::ReleaseSlot(int slot) {
  tf_.kv().ResetSeq(slot);
  end_len_[static_cast<size_t>(slot)] = 0;
  if (draft_ != nullptr && spec_slot_[static_cast<size_t>(slot)]) {
    draft_->kv().ResetSeq(slot);
    spec_slot_[static_cast<size_t>(slot)] = false;
    draft_carry_[static_cast<size_t>(slot)] = -1;
  }
}

void FunctionalBackend::RetainKv(int slot, int job_id) {
  hllm::KvCache& kv = tf_.kv();
  const auto [it, inserted] = retained_.emplace(
      job_id,
      Retained{kv.Retain(slot, -1), kv.length(slot), last_token_[static_cast<size_t>(slot)]});
  HEXLLM_CHECK_MSG(inserted, "job retained twice");
}

void FunctionalBackend::DropRetained(int job_id) {
  const auto it = retained_.find(job_id);
  HEXLLM_CHECK(it != retained_.end());
  tf_.kv().DropHandle(it->second.handle);
  retained_.erase(it);
}

void FunctionalBackend::ReleaseGroup(int prompt_group) {
  const auto it = anchors_.find(prompt_group);
  if (it == anchors_.end()) {
    return;
  }
  tf_.kv().DropHandle(it->second.handle);
  anchors_.erase(it);
}

void FunctionalBackend::PauseSlot(int slot, int job_id) {
  hllm::KvCache& kv = tf_.kv();
  Paused p;
  p.handle = kv.Retain(slot, -1);
  p.len = kv.length(slot);
  p.last_token = last_token_[static_cast<size_t>(slot)];
  p.end_len = end_len_[static_cast<size_t>(slot)];
  p.opts = sampler_opts_[static_cast<size_t>(slot)];
  p.rng = sampler_rng_[static_cast<size_t>(slot)];  // exact sampler state at the pause point
  // Draft KV is NOT snapshotted: it is rebuilt from the synthetic context view at resume.
  // A different draft conditioning can only change acceptance (cycle timing), never the
  // committed token stream — losslessness keeps pause/resume bit-identical regardless.
  p.speculative = draft_ != nullptr && spec_slot_[static_cast<size_t>(slot)];
  if (p.speculative) {
    draft_->kv().ResetSeq(slot);
    spec_slot_[static_cast<size_t>(slot)] = false;
    draft_carry_[static_cast<size_t>(slot)] = -1;
  }
  const auto [it, inserted] = paused_.emplace(job_id, std::move(p));
  HEXLLM_CHECK_MSG(inserted, "job paused twice");
  kv.ResetSeq(slot);  // the handle's references keep every page resident
  end_len_[static_cast<size_t>(slot)] = 0;
}

void FunctionalBackend::ResumeSlot(int slot, int job_id, int context_tokens) {
  const auto it = paused_.find(job_id);
  HEXLLM_CHECK_MSG(it != paused_.end(), "resume of a job that was never paused");
  HEXLLM_CHECK(it->second.len == context_tokens);
  hllm::KvCache& kv = tf_.kv();
  // Map the snapshot back, then drop the handle: the slot's own references keep the pages
  // alive, and the tail block's refcount returns to 1 so the next append extends in place —
  // no copy-on-write split, block statistics identical to an un-preempted run.
  kv.ShareFromHandle(it->second.handle, slot, context_tokens);
  kv.DropHandle(it->second.handle);
  last_token_[static_cast<size_t>(slot)] = it->second.last_token;
  end_len_[static_cast<size_t>(slot)] = it->second.end_len;
  sampler_opts_[static_cast<size_t>(slot)] = it->second.opts;
  sampler_rng_[static_cast<size_t>(slot)] = it->second.rng;
  const bool speculative = it->second.speculative;
  paused_.erase(it);
  if (speculative) {
    // Re-prime the draft from the synthetic context view (the pause dropped its KV).
    // Resume is charged as free (mirroring the mapped-KV target resume), so the returned
    // prefill cost is discarded; the next cycle's ledger mark is taken after this runs.
    AdmitDraft(slot, job_id, /*speculative=*/true, context_tokens);
  }
}

bool FunctionalBackend::CanResume(int job_id) {
  const auto it = paused_.find(job_id);
  HEXLLM_CHECK_MSG(it != paused_.end(), "resume of a job that was never paused");
  const hllm::KvCache& kv = tf_.kv();
  // The paused pages are already resident; only growth to the committed end length needs
  // headroom (plus one block of tail slack, mirroring CanAdmit's reservation rule).
  const int64_t needed = hexllm::CeilDiv(it->second.end_len, kv.block_tokens()) -
                         hexllm::CeilDiv(it->second.len, kv.block_tokens()) + 1;
  int64_t reserved = 0;
  for (size_t s = 0; s < end_len_.size(); ++s) {
    if (end_len_[s] <= 0) {
      continue;
    }
    const int64_t want = hexllm::CeilDiv(end_len_[s], kv.block_tokens());
    reserved += std::max<int64_t>(0, want - kv.table_blocks(static_cast<int>(s))) +
                (kv.TailShared(static_cast<int>(s)) ? 1 : 0);
  }
  return kv.free_blocks() - reserved >= needed;
}

StepOutcome FunctionalBackend::Step(std::span<const int> slots, std::span<const int> contexts) {
  HEXLLM_CHECK(!slots.empty() && slots.size() == contexts.size());
  const int batch = static_cast<int>(slots.size());
  const int vocab = tf_.config().vocab;
  std::vector<int> tokens(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    const int slot = slots[static_cast<size_t>(i)];
    HEXLLM_DCHECK(tf_.kv().length(slot) == contexts[static_cast<size_t>(i)]);
    tokens[static_cast<size_t>(i)] = last_token_[static_cast<size_t>(slot)];
  }
  // Flip to the buffer the PREVIOUS step did not write: its logits stay intact while the
  // NPU fills this one, which is what lets the batcher overlap the previous step's CPU
  // lm_head with this step's NPU time (ServeOptions::overlap_lm_head).
  logits_cur_ ^= 1;
  std::vector<float>& logits_vec = logits_buf_[static_cast<size_t>(logits_cur_)];
  std::span<float> logits(logits_vec.data(), static_cast<size_t>(batch) * vocab);
  const hexsim::CycleLedger mark = dev_.ledger();
  const hkv::KvOffloadStats omark = BeginOffloadStep();
  tf_.StepSeqs(tokens, slots, logits);
  StepOutcome out;
  out.cost.total_s = ComposeStep(mark, batch, &out.cost);
  FoldOffload(omark, slots, contexts, out.cost.linear_s, &out.cost);
  out.watts = hrt::StepPower(dev_.profile(), out.cost, batch).watts;
  out.tokens.resize(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    // Every decode path samples through the one sampler entry point: the per-slot policy
    // seeded at admission. The default policy is greedy (temperature 0), where SampleToken
    // reduces to the old argmax without consuming Rng state — token checksums unchanged.
    const int slot = slots[static_cast<size_t>(i)];
    const int tok = hllm::SampleToken(
        std::span<const float>(logits_vec.data() + static_cast<size_t>(i) * vocab,
                               static_cast<size_t>(vocab)),
        sampler_opts_[static_cast<size_t>(slot)], sampler_rng_[static_cast<size_t>(slot)]);
    out.tokens[static_cast<size_t>(i)] = tok;
    last_token_[static_cast<size_t>(slot)] = tok;
  }
  return out;
}

StepOutcome FunctionalBackend::SpeculativeStep(std::span<const int> slots,
                                               std::span<const int> contexts,
                                               std::span<const int> gammas) {
  HEXLLM_CHECK(!slots.empty() && slots.size() == contexts.size() &&
               slots.size() == gammas.size());
  int max_gamma = 0;
  for (const int g : gammas) {
    HEXLLM_CHECK(g >= 0);
    max_gamma = std::max(max_gamma, g);
  }
  if (max_gamma == 0 || draft_ == nullptr) {
    return Step(slots, contexts);  // nothing to draft this cycle: exact legacy behavior
  }
  ++spec_cycles_;
  const int batch = static_cast<int>(slots.size());
  const int vocab = tf_.config().vocab;
  const hexsim::DeviceProfile& d = dev_.profile();
  // One ledger window prices the whole cycle: the draft shares dev_, so its gamma decode
  // forwards and any catch-up prefill land in the same engine-busy deltas as the verify.
  const hexsim::CycleLedger mark = dev_.ledger();
  const hkv::KvOffloadStats omark = BeginOffloadStep();

  // Draft catch-up + per-cycle state seed. A fully-accepted previous cycle left the draft
  // one token short (the target committed gamma+1 tokens but the draft only consumed
  // gamma); the carried proposal closes the gap with a 1-token prefill.
  int n_catchup = 0;
  for (int i = 0; i < batch; ++i) {
    const size_t slot = static_cast<size_t>(slots[static_cast<size_t>(i)]);
    if (gammas[static_cast<size_t>(i)] <= 0) {
      continue;
    }
    HEXLLM_DCHECK(spec_slot_[slot]);
    if (draft_carry_[slot] >= 0) {
      const int carry = draft_carry_[slot];
      draft_->Prefill(static_cast<int>(slot), std::span<const int>(&carry, 1));
      draft_carry_[slot] = -1;
      ++n_catchup;
    }
    HEXLLM_DCHECK(draft_->kv().length(static_cast<int>(slot)) ==
                  contexts[static_cast<size_t>(i)]);
    draft_prev_[slot] = last_token_[slot];
    spec_proposals_[slot].clear();
  }

  // gamma draft decode steps. Step j batches every row whose gamma reaches j (per-row
  // gammas shrink near a job's end). The draft proposes greedily regardless of the job's
  // sampler — draft policy only moves acceptance, never the committed stream.
  double lm_head_s = 0.0;
  double lm_cpu_busy_s = 0.0;
  for (int j = 1; j <= max_gamma; ++j) {
    spec_tokens_.clear();
    spec_seqs_.clear();
    for (int i = 0; i < batch; ++i) {
      if (gammas[static_cast<size_t>(i)] < j) {
        continue;
      }
      const size_t slot = static_cast<size_t>(slots[static_cast<size_t>(i)]);
      spec_tokens_.push_back(draft_prev_[slot]);
      spec_seqs_.push_back(static_cast<int>(slot));
    }
    const int draft_batch = static_cast<int>(spec_tokens_.size());
    std::span<float> dlogits(draft_logits_.data(), static_cast<size_t>(draft_batch) * vocab);
    draft_->StepSeqs(spec_tokens_, spec_seqs_, dlogits);
    const hkern::LmHeadCost lm =
        hkern::LmHeadCostModel(d, draft_batch, draft_->config().hidden, vocab);
    lm_head_s += lm.seconds;
    lm_cpu_busy_s += lm.cpu_busy_s;
    for (int r = 0; r < draft_batch; ++r) {
      const size_t slot = static_cast<size_t>(spec_seqs_[static_cast<size_t>(r)]);
      const int tok = hllm::ArgmaxToken(std::span<const float>(
          draft_logits_.data() + static_cast<size_t>(r) * vocab, static_cast<size_t>(vocab)));
      spec_proposals_[slot].push_back(tok);
      draft_prev_[slot] = tok;
    }
  }

  // One batched multi-row verify: row span [last committed token, proposals...] per
  // sequence, all spans' rows filling HMX tile rows of one forward (Transformer::StepSpans).
  spec_tokens_.clear();
  spec_counts_.clear();
  int total_rows = 0;
  for (int i = 0; i < batch; ++i) {
    const size_t slot = static_cast<size_t>(slots[static_cast<size_t>(i)]);
    const int g = gammas[static_cast<size_t>(i)];
    spec_tokens_.push_back(last_token_[slot]);
    for (int j = 0; j < g; ++j) {
      spec_tokens_.push_back(spec_proposals_[slot][static_cast<size_t>(j)]);
    }
    spec_counts_.push_back(g + 1);
    total_rows += g + 1;
  }
  logits_cur_ ^= 1;
  std::vector<float>& logits_vec = logits_buf_[static_cast<size_t>(logits_cur_)];
  std::span<float> logits(logits_vec.data(), static_cast<size_t>(total_rows) * vocab);
  tf_.StepSpans(spec_tokens_, slots, spec_counts_, logits);

  // Acceptance walk. Every committed token is sampled from the TARGET's logits at exact
  // plain-decode conditioning (row j of a span saw positions < ctx+j only), consuming the
  // slot's Rng one draw per committed token in stream order — so the committed stream is
  // bit-identical to plain decode for any sampler, and rejection can only shorten a cycle.
  StepOutcome out;
  out.row_token_counts.assign(static_cast<size_t>(batch), 0);
  out.tokens.reserve(static_cast<size_t>(total_rows));
  int row0 = 0;
  for (int i = 0; i < batch; ++i) {
    const size_t slot = static_cast<size_t>(slots[static_cast<size_t>(i)]);
    const int g = gammas[static_cast<size_t>(i)];
    const int ctx = contexts[static_cast<size_t>(i)];
    const std::vector<int>& props = spec_proposals_[slot];
    int committed = 0;
    for (int j = 0; j <= g; ++j) {
      const int tok = hllm::SampleToken(
          std::span<const float>(logits_vec.data() + static_cast<size_t>(row0 + j) * vocab,
                                 static_cast<size_t>(vocab)),
          sampler_opts_[slot], sampler_rng_[slot]);
      out.tokens.push_back(tok);
      last_token_[slot] = tok;
      ++committed;
      // Row j+1's logits conditioned on proposal d_{j+1}; a mismatch invalidates them (and
      // everything after). Row g is the bonus row — nothing proposed beyond it.
      if (j == g || tok != props[static_cast<size_t>(j)]) {
        break;
      }
    }
    out.row_token_counts[static_cast<size_t>(i)] = committed;
    // The verify appended g+1 target KV rows (positions ctx..ctx+g); roll the rejected
    // suffix back through the paged-cache tail. committed == g+1 means nothing to drop.
    if (committed < g + 1) {
      spec_rollback_blocks_ += tf_.kv().TruncateSeq(static_cast<int>(slot), ctx + committed);
    }
    if (g > 0) {
      if (committed == g + 1) {
        // Full acceptance: the draft consumed only t0,d_1..d_{g-1} (length ctx+g) but the
        // target committed to ctx+g+1. Carry d_g for a 1-token catch-up next cycle.
        draft_carry_[slot] = props[static_cast<size_t>(g - 1)];
      } else {
        // Resync the draft to the committed prefix; its next input is last_token_.
        draft_->kv().TruncateSeq(static_cast<int>(slot), ctx + committed);
        draft_carry_[slot] = -1;
      }
    }
    row0 += g + 1;
  }

  // Cycle cost: overlapped engine busy time across the whole window (drafts + verify),
  // plus the CPU lm_head per forward (gamma draft heads + ONE verify head over all rows —
  // the multi-row verify is charged as one step, like Best-of-N lanes), plus one mailbox
  // round trip per forward dispatched (catch-up prefills + gamma drafts + the verify).
  const double npu_s = ComposeStep(mark, /*batch=*/0, &out.cost);
  const hkern::LmHeadCost verify_lm =
      hkern::LmHeadCostModel(d, total_rows, tf_.config().hidden, vocab);
  out.cost.lm_head_s = lm_head_s + verify_lm.seconds;
  out.cost.cpu_busy_s = lm_cpu_busy_s + verify_lm.cpu_busy_s;
  out.cost.comm_s = (n_catchup + max_gamma + 1) *
                    (2 * hexsim::NpuSession::kMailboxLatencySeconds + 30e-6);
  out.cost.total_s = npu_s + out.cost.lm_head_s + out.cost.comm_s;
  FoldOffload(omark, slots, contexts, npu_s, &out.cost);
  out.watts = hrt::StepPower(d, out.cost, batch).watts;
  return out;
}

double FunctionalBackend::ComposeStep(const hexsim::CycleLedger& mark, int batch,
                                      hrt::StepCost* cost) const {
  const hexsim::CycleLedger& led = dev_.ledger();
  const auto delta = [&](hexsim::Engine e) {
    return led.EngineSeconds(e) - mark.EngineSeconds(e);
  };
  const hexsim::DeviceProfile& d = dev_.profile();
  cost->hvx_busy_s = delta(hexsim::Engine::kHvx);
  cost->hmx_busy_s = delta(hexsim::Engine::kHmx);
  cost->dma_busy_s = delta(hexsim::Engine::kDma);
  cost->ddr_bytes = led.dma_bytes() - mark.dma_bytes();
  // Critical path mirrors the analytic engine's pipeline composition: DMA, HMX and the
  // HVX thread pool overlap; the slowest engine sets the NPU-side step time.
  const double npu_s =
      std::max({cost->dma_busy_s, cost->hmx_busy_s, cost->hvx_busy_s / d.hvx_threads});
  cost->linear_s = npu_s;
  if (batch < 1) {
    return npu_s;  // prefill: caller adds per-chunk comm; no lm_head
  }
  const hkern::LmHeadCost lm =
      hkern::LmHeadCostModel(d, batch, tf_.config().hidden, tf_.config().vocab);
  cost->lm_head_s = lm.seconds;
  cost->cpu_busy_s = lm.cpu_busy_s;
  cost->comm_s = 2 * hexsim::NpuSession::kMailboxLatencySeconds + 30e-6;
  return npu_s + cost->lm_head_s + cost->comm_s;
}

}  // namespace hserve

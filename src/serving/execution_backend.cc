#include "src/serving/execution_backend.h"

#include <algorithm>
#include <cstdint>

#include "src/base/check.h"
#include "src/base/math_util.h"
#include "src/hexsim/rpcmem.h"
#include "src/kernels/attention.h"
#include "src/kernels/lm_head.h"
#include "src/llm/sampling.h"

namespace hserve {

namespace {

// Per-row contexts are priced at their mean, rounded UP to the bucket boundary so pricing
// never undershoots the true mean and stays monotone as contexts grow.
int ContextBucket(std::span<const int> contexts, int bucket_tokens) {
  int64_t sum = 0;
  for (int c : contexts) {
    HEXLLM_DCHECK(c >= 0);
    sum += c;
  }
  const int64_t mean = hexllm::CeilDiv(sum, static_cast<int64_t>(contexts.size()));
  return static_cast<int>(hexllm::RoundUp(std::max<int64_t>(mean, 1), bucket_tokens));
}

}  // namespace

AnalyticBackend::AnalyticBackend(const hrt::Engine& engine, int context_bucket_tokens)
    : engine_(engine), bucket_tokens_(std::max(1, context_bucket_tokens)) {}

double AnalyticBackend::AdmitSlot(int /*slot*/, const ServeJob& /*job*/, int /*context_tokens*/,
                                  int charged_prefill_tokens) {
  if (charged_prefill_tokens <= 0) {
    return 0.0;
  }
  auto [it, inserted] = prefill_cache_.try_emplace(charged_prefill_tokens, 0.0);
  if (inserted) {
    it->second = engine_.Prefill(charged_prefill_tokens).total_s;
  }
  return it->second;
}

const hrt::StepCost& AnalyticBackend::BucketedCost(int batch, int context) {
  const int bucket =
      static_cast<int>(hexllm::RoundUp(std::max(context, 1), bucket_tokens_));
  const auto key = std::make_pair(batch, bucket);
  auto it = step_cache_.find(key);
  if (it == step_cache_.end()) {
    const hrt::StepCost cost = engine_.DecodeStep(batch, bucket);
    const bool gpu = engine_.options().backend == hrt::Backend::kGpuOpenCl;
    const double watts = hrt::StepPower(*engine_.options().device, cost, batch, gpu).watts;
    it = step_cache_.emplace(key, std::make_pair(cost, watts)).first;
  }
  return it->second.first;
}

StepOutcome AnalyticBackend::Step(std::span<const int> slots, std::span<const int> contexts) {
  HEXLLM_CHECK(!slots.empty() && slots.size() == contexts.size());
  const int batch = static_cast<int>(slots.size());
  const int bucket = ContextBucket(contexts, bucket_tokens_);
  StepOutcome out;
  out.cost = BucketedCost(batch, bucket);
  out.watts = step_cache_.at(std::make_pair(batch, bucket)).second;
  return out;
}

FunctionalBackend::FunctionalBackend(hexsim::NpuDevice& dev, const hllm::ModelWeights& weights,
                                     int max_batch, int max_context)
    : dev_(dev), tf_(dev, weights, max_batch, max_context), max_context_(max_context),
      last_token_(static_cast<size_t>(max_batch), 1),
      logits_(static_cast<size_t>(max_batch) * weights.config.vocab) {}

double FunctionalBackend::AdmitSlot(int slot, const ServeJob& job, int context_tokens,
                                    int /*charged_prefill_tokens*/) {
  HEXLLM_CHECK(slot >= 0 && slot < static_cast<int>(last_token_.size()));
  HEXLLM_CHECK(context_tokens + job.decode_tokens <= max_context_);
  tf_.kv().ResetSeq(slot);
  const int vocab = tf_.config().vocab;
  if (context_tokens == 0) {
    // Nothing to prefill: decode starts from a fixed BOS-like token.
    last_token_[static_cast<size_t>(slot)] = 1 % vocab;
    return 0.0;
  }
  // Functional prefill must materialize the slot's whole KV prefix, so unlike the analytic
  // backend it re-executes shared-group prompts per slot (KV sharing is future work). The
  // prompt is synthetic but deterministic per job, so reruns reproduce token-for-token.
  std::vector<int> prompt(static_cast<size_t>(context_tokens));
  for (int i = 0; i < context_tokens; ++i) {
    prompt[static_cast<size_t>(i)] =
        static_cast<int>((static_cast<uint32_t>(job.id) * 2654435761u + 13u * i + 7u) %
                         static_cast<uint32_t>(vocab));
  }
  const hexsim::CycleLedger mark = dev_.ledger();
  tf_.Prefill(slot, prompt);
  last_token_[static_cast<size_t>(slot)] = prompt.back();
  // Prefill's critical path: overlapped engine busy time plus one mailbox round trip per
  // 32-token chunk (mirrors Engine::Prefill's comm model). No lm_head — logits discarded.
  hrt::StepCost cost;
  const double npu_s = ComposeStep(mark, /*batch=*/0, &cost);
  const int chunks = static_cast<int>(hexllm::CeilDiv(context_tokens, hkern::kAttnQTile));
  return npu_s + chunks * (2 * hexsim::NpuSession::kMailboxLatencySeconds + 30e-6);
}

StepOutcome FunctionalBackend::Step(std::span<const int> slots, std::span<const int> contexts) {
  HEXLLM_CHECK(!slots.empty() && slots.size() == contexts.size());
  const int batch = static_cast<int>(slots.size());
  const int vocab = tf_.config().vocab;
  std::vector<int> tokens(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    const int slot = slots[static_cast<size_t>(i)];
    HEXLLM_DCHECK(tf_.kv().length(slot) == contexts[static_cast<size_t>(i)]);
    tokens[static_cast<size_t>(i)] = last_token_[static_cast<size_t>(slot)];
  }
  std::span<float> logits(logits_.data(), static_cast<size_t>(batch) * vocab);
  const hexsim::CycleLedger mark = dev_.ledger();
  tf_.StepSeqs(tokens, slots, logits);
  StepOutcome out;
  out.cost.total_s = ComposeStep(mark, batch, &out.cost);
  out.watts = hrt::StepPower(dev_.profile(), out.cost, batch).watts;
  out.tokens.resize(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    const int tok = hllm::ArgmaxToken(
        std::span<const float>(logits_.data() + static_cast<size_t>(i) * vocab,
                               static_cast<size_t>(vocab)));
    out.tokens[static_cast<size_t>(i)] = tok;
    last_token_[static_cast<size_t>(slots[static_cast<size_t>(i)])] = tok;
  }
  return out;
}

double FunctionalBackend::ComposeStep(const hexsim::CycleLedger& mark, int batch,
                                      hrt::StepCost* cost) const {
  const hexsim::CycleLedger& led = dev_.ledger();
  const auto delta = [&](hexsim::Engine e) {
    return led.EngineSeconds(e) - mark.EngineSeconds(e);
  };
  const hexsim::DeviceProfile& d = dev_.profile();
  cost->hvx_busy_s = delta(hexsim::Engine::kHvx);
  cost->hmx_busy_s = delta(hexsim::Engine::kHmx);
  cost->dma_busy_s = delta(hexsim::Engine::kDma);
  cost->ddr_bytes = led.dma_bytes() - mark.dma_bytes();
  // Critical path mirrors the analytic engine's pipeline composition: DMA, HMX and the
  // HVX thread pool overlap; the slowest engine sets the NPU-side step time.
  const double npu_s =
      std::max({cost->dma_busy_s, cost->hmx_busy_s, cost->hvx_busy_s / d.hvx_threads});
  cost->linear_s = npu_s;
  if (batch < 1) {
    return npu_s;  // prefill: caller adds per-chunk comm; no lm_head
  }
  const hkern::LmHeadCost lm =
      hkern::LmHeadCostModel(d, batch, tf_.config().hidden, tf_.config().vocab);
  cost->lm_head_s = lm.seconds;
  cost->cpu_busy_s = lm.cpu_busy_s;
  cost->comm_s = 2 * hexsim::NpuSession::kMailboxLatencySeconds + 30e-6;
  return npu_s + cost->lm_head_s + cost->comm_s;
}

}  // namespace hserve

#include "src/serving/continuous_batcher.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/base/check.h"
#include "src/exec/thread_pool.h"

namespace hserve {

namespace {

// Lays one priced decode step onto the trace lanes: the engine busy overlays share the
// NPU-side span; the CPU lm_head either serializes after it (charged_s == c.total_s) or —
// when the step was charged with the NPU/CPU overlap rule — runs concurrently, right-aligned
// against the mailbox hop that ends the charged span.
void TraceStep(hrt::TraceBuilder& tb, double t0, const hrt::StepCost& c, double charged_s,
               int batch, int mean_context) {
  const double npu_s = c.linear_s + c.attention_s + c.misc_s;
  const bool overlapped = charged_s < c.total_s;
  const std::string suffix =
      " b=" + std::to_string(batch) + " ctx=" + std::to_string(mean_context);
  if (c.dma_busy_s > 0.0) {
    tb.Add("DMA", "weights" + suffix, t0, std::min(c.dma_busy_s, npu_s));
  }
  if (c.hvx_busy_s > 0.0) {
    tb.Add("HVX", "dequant+attn" + suffix, t0, std::min(c.hvx_busy_s, npu_s));
  }
  if (c.hmx_busy_s > 0.0) {
    tb.Add("HMX", "gemm" + suffix, t0, std::min(c.hmx_busy_s, npu_s));
  }
  if (c.lm_head_s > 0.0) {
    if (overlapped) {
      tb.Add("CPU", "lm_head (overlapped)" + suffix,
             t0 + std::max(0.0, charged_s - c.comm_s - c.lm_head_s), c.lm_head_s);
    } else {
      tb.Add("CPU", "lm_head" + suffix, t0 + npu_s, c.lm_head_s);
    }
  }
  if (c.comm_s > 0.0) {
    tb.Add("COMM", "mailbox", t0 + charged_s - c.comm_s, c.comm_s);
  }
}

// Final KV length of a completed (or fully-specified) job: inherited context + fresh prompt
// + decoded tokens.
int JobEndLength(const ServeJob& j) {
  return j.prompt_tokens + j.context_tokens + j.decode_tokens;
}

}  // namespace

ContinuousBatcher::ContinuousBatcher(ExecutionBackend& backend, const ServeOptions& options)
    : backend_(backend), options_(options) {
  HEXLLM_CHECK(options_.max_batch >= 1);
  if (options_.enable_preemption) {
    HEXLLM_CHECK_MSG(options_.policy == SchedulePolicy::kContinuous,
                     "preemption requires the continuous schedule policy");
  }
  Reset();
}

void ContinuousBatcher::Reset() {
  r_ = ScheduleResult{};
  jobs_.clear();
  groups_.clear();
  group_index_.clear();
  id_index_.clear();
  ids_unique_ = true;
  ready_.clear();
  ready_seq_ = 0;
  slots_.assign(static_cast<size_t>(options_.max_batch), Slot{});
  free_slots_.clear();
  free_slots_.reserve(static_cast<size_t>(options_.max_batch));
  for (int s = options_.max_batch - 1; s >= 0; --s) {
    free_slots_.push_back(s);  // LIFO: a slot freed on step k is the first reused on k+1
  }
  group_charged_.clear();
  pinned_groups_.clear();
  pending_children_.clear();
  occupied_ = 0;
  completed_ = 0;
  paused_unqueued_ = 0;
  step_idx_ = 0;
  useful_rows_ = 0;
  occupied_rows_ = 0;
  context_row_sum_ = 0;
  traced_steps_ = 0;
  traced_admissions_ = 0;
  overlap_saved_s_ = 0.0;
  overlap_lm_s_ = 0.0;
  poisoned_ = false;
  finished_ = false;
  reg_.Clear();
  step_seconds_hist_ = &reg_.histogram("serve.step_seconds",
                                       obs::HistogramBuckets::Exponential(1e-5, 4.0, 12));
  step_active_hist_ = &reg_.histogram(
      "serve.step_active_rows", obs::HistogramBuckets::Linear(1.0, options_.max_batch));
}

int ContinuousBatcher::Register(const ServeJob& job) {
  const int index = static_cast<int>(jobs_.size());
  JobRec rec;
  rec.job = job;
  const auto [it, inserted] = id_index_.try_emplace(job.id, index);
  if (!inserted) {
    ids_unique_ = false;  // tolerated in fork-free batch streams (legacy producers)
  }
  if (job.parent_job >= 0) {
    const auto pit = id_index_.find(job.parent_job);
    HEXLLM_CHECK(pit != id_index_.end());
    rec.parent_index = pit->second;
  }
  // Group membership: named groups share one entry; ungrouped jobs get singletons.
  int g;
  if (job.prompt_group >= 0) {
    const auto [git, ginserted] =
        group_index_.try_emplace(job.prompt_group, static_cast<int>(groups_.size()));
    if (ginserted) {
      groups_.emplace_back();
      groups_.back().orig_id = job.prompt_group;
      group_charged_.push_back(false);
    }
    g = git->second;
  } else {
    g = static_cast<int>(groups_.size());
    groups_.emplace_back();
    group_charged_.push_back(false);
  }
  rec.group = g;
  ++groups_[static_cast<size_t>(g)].total;
  jobs_.push_back(std::move(rec));
  pending_children_.push_back(0);
  return index;
}

void ContinuousBatcher::Enqueue(int job_index, bool resume) {
  ReadyEntry e;
  e.neg_priority = -jobs_[static_cast<size_t>(job_index)].job.priority;
  e.seq = ready_seq_++;
  e.job = job_index;
  e.resume = resume;
  ready_.insert(e);
}

bool ContinuousBatcher::Submit(const ServeJob& job, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "job " + std::to_string(job.id) + ": " + why;
    }
    return false;
  };
  if (finished_) {
    Reset();
  }
  if (poisoned_) {
    return fail("run already failed: " + r_.error);
  }
  if (job.decode_tokens < 1) {
    return fail("decode_tokens must be >= 1");
  }
  if (job.prompt_tokens < 0 || job.context_tokens < 0) {
    return fail("prompt_tokens and context_tokens must be non-negative");
  }
  if (job.barrier != 0) {
    return fail("live submissions must use barrier 0 (waves exist only in Run streams)");
  }
  if (static_cast<int64_t>(JobEndLength(job)) > backend_.max_context()) {
    return fail("prompt + context + decode exceeds the backend context limit");
  }
  if (id_index_.count(job.id) != 0) {
    return fail("duplicate job id in live submission");
  }
  if (job.parent_job >= 0) {
    const auto pit = id_index_.find(job.parent_job);
    if (pit == id_index_.end()) {
      return fail("parent_job " + std::to_string(job.parent_job) + " was never submitted");
    }
    const JobRec& parent = jobs_[static_cast<size_t>(pit->second)];
    if (parent.state != JobState::kDone || !parent.retained) {
      return fail("fork parent must have completed with retained KV (retain_kv)");
    }
    if (job.prompt_tokens + job.context_tokens < JobEndLength(parent.job)) {
      return fail("fork context must cover the parent's final KV length");
    }
  }
  const int index = Register(job);
  // Live groups run as one barrier-0 level that grows as members arrive.
  Group& g = groups_[static_cast<size_t>(jobs_[static_cast<size_t>(index)].group)];
  if (g.levels.empty()) {
    g.levels.push_back({0, {}});
  }
  g.levels.front().second.push_back(index);
  ++g.pending;
  Enqueue(index, /*resume=*/false);
  return true;
}

void ContinuousBatcher::Poison(const std::string& error) {
  poisoned_ = true;
  r_.error = error;
  r_.steps = step_idx_;
  r_.kv = backend_.kv_stats();
}

bool ContinuousBatcher::PauseJob(int job_id, bool requeue) {
  HEXLLM_CHECK_MSG(ids_unique_, "job-id APIs need unique job ids");
  const auto it = id_index_.find(job_id);
  if (it == id_index_.end()) {
    return false;
  }
  const JobRec& rec = jobs_[static_cast<size_t>(it->second)];
  if (rec.state != JobState::kDecoding) {
    return false;
  }
  PauseSlotInternal(rec.slot, requeue, nullptr);
  return true;
}

bool ContinuousBatcher::ResumeJob(int job_id) {
  HEXLLM_CHECK_MSG(ids_unique_, "job-id APIs need unique job ids");
  const auto it = id_index_.find(job_id);
  if (it == id_index_.end()) {
    return false;
  }
  const int index = it->second;
  if (jobs_[static_cast<size_t>(index)].state != JobState::kPaused) {
    return false;
  }
  // Only manually-parked jobs (PauseJob(requeue=false)) need this; auto-requeued ones are
  // already in the admission queue.
  for (const ReadyEntry& e : ready_) {
    if (e.job == index) {
      return false;
    }
  }
  --paused_unqueued_;
  Enqueue(index, /*resume=*/true);
  return true;
}

void ContinuousBatcher::PinGroup(int prompt_group) {
  HEXLLM_CHECK(prompt_group >= 0);
  pinned_groups_.insert(prompt_group);
}

void ContinuousBatcher::EvictGroup(int prompt_group) {
  backend_.ReleaseGroup(prompt_group);
  pinned_groups_.erase(prompt_group);
  // The next admission of the group must re-prefill (and re-charge) the prefix from
  // scratch — the anchor is gone.
  const auto it = group_index_.find(prompt_group);
  if (it != group_index_.end()) {
    group_charged_[static_cast<size_t>(it->second)] = false;
  }
}

void ContinuousBatcher::AdvanceTime(double seconds) {
  HEXLLM_CHECK(seconds >= 0.0);
  r_.makespan_s += seconds;
  r_.idle_s += seconds;
}

void ContinuousBatcher::ReleaseRetained(int job_id) {
  HEXLLM_CHECK_MSG(ids_unique_, "job-id APIs need unique job ids");
  const auto it = id_index_.find(job_id);
  if (it == id_index_.end()) {
    return;
  }
  JobRec& rec = jobs_[static_cast<size_t>(it->second)];
  if (!rec.retained) {
    return;
  }
  backend_.DropRetained(job_id);
  rec.retained = false;
}

JobState ContinuousBatcher::job_state(int job_id) const {
  HEXLLM_CHECK_MSG(ids_unique_, "job-id APIs need unique job ids");
  const auto it = id_index_.find(job_id);
  HEXLLM_CHECK_MSG(it != id_index_.end(), "unknown job id");
  return jobs_[static_cast<size_t>(it->second)].state;
}

void ContinuousBatcher::PauseSlotInternal(int slot, bool requeue, StepEvents* ev) {
  Slot& sl = slots_[static_cast<size_t>(slot)];
  HEXLLM_CHECK(sl.job >= 0);
  JobRec& rec = jobs_[static_cast<size_t>(sl.job)];
  HEXLLM_CHECK(rec.state == JobState::kDecoding);
  // The backend snapshots the slot's KV (pages stay resident behind a retained handle) plus
  // whatever decode state it needs for a bit-identical resume (last token, sampler Rng).
  backend_.PauseSlot(slot, rec.job.id);
  rec.state = JobState::kPaused;
  rec.context = sl.context;
  rec.remaining = sl.remaining;
  rec.slot = -1;
  sl.job = -1;
  free_slots_.push_back(slot);
  --occupied_;
  ++r_.preemptions;
  if (requeue) {
    Enqueue(static_cast<int>(&rec - jobs_.data()), /*resume=*/true);
  } else {
    ++paused_unqueued_;
  }
  if (ev != nullptr) {
    ev->paused.push_back(rec.job.id);
  }
}

void ContinuousBatcher::Admit(const ReadyEntry& entry, StepEvents& ev) {
  const int slot = free_slots_.back();
  free_slots_.pop_back();
  JobRec& rec = jobs_[static_cast<size_t>(entry.job)];

  if (entry.resume) {
    // Re-admission from retained KV: the backend maps the paused snapshot back into the
    // slot (no re-prefill, no new blocks for the covered positions) and restores decode
    // state, so the resumed stream is bit-identical to an un-preempted run.
    backend_.ResumeSlot(slot, rec.job.id, rec.context);
    slots_[static_cast<size_t>(slot)] = Slot{entry.job, rec.context, rec.remaining};
    rec.state = JobState::kDecoding;
    rec.slot = slot;
    ++occupied_;
    ++r_.resumes;
    r_.admissions.push_back(
        Admission{rec.job.id, slot, step_idx_, r_.makespan_s, /*resumed=*/true});
    ev.admitted.push_back(rec.job.id);
    return;
  }

  const ServeJob& job = rec.job;
  const int g = rec.group;
  int charged = 0;
  if (rec.parent_index >= 0) {
    // Fork: the shared stem maps from the parent's retained KV for free; only tokens PAST
    // the parent's final length (a session's new turn) prefill and charge.
    charged = job.prompt_tokens + job.context_tokens -
              JobEndLength(jobs_[static_cast<size_t>(rec.parent_index)].job);
  } else if (job.prompt_tokens > 0) {
    if (!group_charged_[static_cast<size_t>(g)]) {
      // The group's first admission prefills (and charges) the whole prompt.
      charged = job.prompt_tokens;
      group_charged_[static_cast<size_t>(g)] = true;
    } else {
      // The group's shared prefix is already resident: only this job's remainder past the
      // prefix prefills. With the default whole-prompt prefix this is 0 — the original
      // shared-prompt accounting for parallel TTS samples.
      charged = std::max(0, job.prompt_tokens - GroupPrefixLen(job));
    }
  }
  const int context = job.prompt_tokens + job.context_tokens;
  const double t0 = r_.makespan_s;
  rec.state = JobState::kPrefilling;
  const double prefill_s = backend_.AdmitSlot(slot, job, context, charged);
  r_.makespan_s += prefill_s;
  r_.prefill_s += prefill_s;
  r_.prefilled_tokens += charged;
  slots_[static_cast<size_t>(slot)] = Slot{entry.job, context, job.decode_tokens};
  rec.state = JobState::kDecoding;
  rec.slot = slot;
  rec.context = context;
  rec.remaining = job.decode_tokens;
  ++occupied_;
  if (rec.parent_index >= 0) {
    ++r_.forked_admissions;
    // Last waiting child admitted: the parent's retained KV snapshot can drop (the
    // children's own block references keep the shared blocks alive). Batch mode only —
    // live parents are released by their owner (ReleaseRetained).
    int& pending = pending_children_[static_cast<size_t>(rec.parent_index)];
    if (pending > 0 && --pending == 0) {
      backend_.DropRetained(job.parent_job);
      jobs_[static_cast<size_t>(rec.parent_index)].retained = false;
    }
  }
  r_.admissions.push_back(Admission{job.id, slot, step_idx_, r_.makespan_s});
  if (options_.record_trace && prefill_s > 0.0 &&
      traced_admissions_ < options_.max_trace_steps) {
    r_.trace.Add("ADMIT", "prefill job " + std::to_string(job.id), t0, prefill_s);
    ++traced_admissions_;
  }
  ev.admitted.push_back(job.id);
}

void ContinuousBatcher::AdmitReady(StepEvents& ev) {
  // Continuous mode refills any free slot; static mode opens a new wave only once the
  // previous one fully drained.
  if (options_.policy != SchedulePolicy::kContinuous && occupied_ != 0) {
    return;
  }
  while (!ready_.empty()) {
    const ReadyEntry entry = *ready_.begin();
    const JobRec& rec = jobs_[static_cast<size_t>(entry.job)];
    // KV admission gate: preempting cannot help a KV-starved candidate (a paused job's
    // pages stay resident), so the fit check gates both the free-slot and victim paths.
    const auto fits = [&] {
      return entry.resume
                 ? backend_.CanResume(rec.job.id)
                 : backend_.CanAdmit(rec.job, rec.job.prompt_tokens + rec.job.context_tokens);
    };
    if (free_slots_.empty()) {
      if (!options_.enable_preemption) {
        break;
      }
      if (!fits()) {
        ++r_.admission_deferrals;
        break;
      }
      // Victim: the decoding job with the strictly lowest priority; ties fall to the most
      // tokens remaining (least sunk progress per token still owed), then the highest slot.
      int victim = -1;
      for (int s = 0; s < options_.max_batch; ++s) {
        const Slot& sl = slots_[static_cast<size_t>(s)];
        if (sl.job < 0 || sl.remaining <= 0) {
          continue;
        }
        const JobRec& cand = jobs_[static_cast<size_t>(sl.job)];
        if (cand.job.priority >= rec.job.priority) {
          continue;
        }
        if (victim < 0) {
          victim = s;
          continue;
        }
        const Slot& vs = slots_[static_cast<size_t>(victim)];
        const JobRec& vrec = jobs_[static_cast<size_t>(vs.job)];
        if (cand.job.priority < vrec.job.priority ||
            (cand.job.priority == vrec.job.priority && sl.remaining >= vs.remaining)) {
          victim = s;
        }
      }
      if (victim < 0) {
        break;  // nothing outranked: the candidate waits for a natural completion
      }
      PauseSlotInternal(victim, /*requeue=*/true, &ev);
    } else if (!fits()) {
      ++r_.admission_deferrals;
      break;  // KV pool/budget full: wait for running jobs to complete and free blocks
    }
    ready_.erase(ready_.begin());
    Admit(entry, ev);
  }
}

void ContinuousBatcher::Complete(int slot, StepEvents& ev) {
  Slot& sl = slots_[static_cast<size_t>(slot)];
  JobRec& rec = jobs_[static_cast<size_t>(sl.job)];
  ++completed_;
  r_.completions.push_back(Completion{rec.job.id, slot, step_idx_, r_.makespan_s});
  if (pending_children_[static_cast<size_t>(sl.job)] > 0 || rec.job.retain_kv) {
    // Fork children (batch mode) or a later session turn (retain_kv) will map this job's
    // final KV; snapshot it before the slot (and its block references) can be released or
    // stepped further.
    backend_.RetainKv(slot, rec.job.id);
    rec.retained = true;
  }
  Group& g = groups_[static_cast<size_t>(rec.group)];
  if (++g.done == g.total && g.orig_id >= 0 && pinned_groups_.count(g.orig_id) == 0) {
    backend_.ReleaseGroup(g.orig_id);  // last group job done: drop the prompt anchor
    // The anchor is gone, so a live-mode member submitted to this group LATER must
    // re-prefill (and be re-charged) from scratch. Pinned groups keep both anchor and flag.
    group_charged_[static_cast<size_t>(rec.group)] = false;
  }
  if (--g.pending == 0 && g.cur + 1 < g.levels.size()) {
    ++g.cur;
    g.pending = static_cast<int>(g.levels[g.cur].second.size());
    for (const int j2 : g.levels[g.cur].second) {
      Enqueue(j2, /*resume=*/false);
    }
  }
  rec.state = JobState::kDone;
  rec.slot = -1;
  ev.completed.push_back(rec.job.id);
  if (options_.policy == SchedulePolicy::kContinuous) {
    backend_.ReleaseSlot(slot);
    sl.job = -1;
    free_slots_.push_back(slot);
    --occupied_;
  }
}

StepEvents ContinuousBatcher::Step() {
  StepEvents ev;
  if (poisoned_ || finished_) {
    ev.time_s = r_.makespan_s;
    return ev;
  }
  AdmitReady(ev);
  if (occupied_ == 0) {
    if (!ready_.empty() && free_slots_.size() == static_cast<size_t>(options_.max_batch)) {
      // An admissible job exists whenever slots are free, so an empty batch with a waiting
      // queue means the KV budget cannot fit the front job even alone — deferring would
      // deadlock.
      const ReadyEntry& front = *ready_.begin();
      Poison("job " + std::to_string(jobs_[static_cast<size_t>(front.job)].job.id) +
             ": KV budget too small to admit into an empty batch");
    }
    ev.time_s = r_.makespan_s;
    return ev;  // idle: the live caller advances the clock to the next arrival
  }

  row_slots_.clear();
  row_contexts_.clear();
  row_gammas_.clear();
  int useful = 0;
  // Effective draft length: the backend's configured gamma, optionally capped/disabled by
  // the run's policy. Per row it further caps at remaining - 1 so a cycle can never commit
  // past the job's decode budget (a job's LAST token always comes from a plain position).
  const int run_gamma = options_.spec_gamma < 0
                            ? backend_.spec_gamma()
                            : std::min(options_.spec_gamma, backend_.spec_gamma());
  bool any_spec = false;
  for (int s = 0; s < options_.max_batch; ++s) {
    const Slot& sl = slots_[static_cast<size_t>(s)];
    if (sl.job >= 0) {
      row_slots_.push_back(s);
      row_contexts_.push_back(sl.context);
      context_row_sum_ += sl.context;
      int gamma = 0;
      if (sl.remaining > 0) {
        ++useful;
        if (run_gamma > 0 && jobs_[static_cast<size_t>(sl.job)].job.speculative &&
            sl.remaining > 1) {
          gamma = std::min(run_gamma, sl.remaining - 1);
          any_spec = true;
        }
      }
      row_gammas_.push_back(gamma);
    }
  }

  const double t0 = r_.makespan_s;
  // A cycle with at least one drafting row runs as gamma draft steps + ONE batched
  // multi-row verify, charged as one step; otherwise the exact legacy single-token step.
  const StepOutcome out = any_spec
                              ? backend_.SpeculativeStep(row_slots_, row_contexts_, row_gammas_)
                              : backend_.Step(row_slots_, row_contexts_);
  if (any_spec) {
    ++r_.spec_cycles;
  }
  // NPU/CPU overlap (docs/threading_model.md): with >= 2 rows in flight, the CPU lm_head
  // of this step hides under the next step's NPU time (double-buffered logits keep its
  // inputs alive), so the step charges max(npu, lm_head) + comm instead of their sum. The
  // charged value is used uniformly — makespan, decode time, energy and the step-latency
  // histogram all see the same number, keeping makespan == prefill + decode + idle exact.
  const double serial_s = out.cost.total_s;
  const double npu_s = serial_s - out.cost.lm_head_s - out.cost.comm_s;
  double charged_s = serial_s;
  if (options_.overlap_lm_head && row_slots_.size() >= 2 && out.cost.lm_head_s > 0.0 &&
      npu_s > 0.0) {
    charged_s = std::max(npu_s, out.cost.lm_head_s) + out.cost.comm_s;
    overlap_saved_s_ += serial_s - charged_s;
    overlap_lm_s_ += out.cost.lm_head_s;
  }
  r_.makespan_s += charged_s;
  r_.decode_s += charged_s;
  r_.flash_s += out.cost.flash_s;
  r_.flash_bytes += out.cost.flash_bytes;
  r_.energy_j += out.watts * charged_s;
  step_seconds_hist_->Observe(charged_s);
  step_active_hist_->Observe(static_cast<double>(useful));
  useful_rows_ += useful;
  occupied_rows_ += static_cast<int64_t>(row_slots_.size());
  if (options_.record_steps) {
    r_.step_active.push_back(useful);
    r_.step_occupied.push_back(static_cast<int>(row_slots_.size()));
  }
  if (options_.record_trace && traced_steps_ < options_.max_trace_steps) {
    int64_t ctx_sum = 0;
    for (const int c : row_contexts_) {
      ctx_sum += c;
    }
    TraceStep(r_.trace, t0, out.cost, charged_s, static_cast<int>(row_slots_.size()),
              static_cast<int>(ctx_sum / static_cast<int64_t>(row_contexts_.size())));
    ++traced_steps_;
  }
  if (!out.tokens.empty()) {
    size_t expect = row_slots_.size();
    if (!out.row_token_counts.empty()) {
      expect = 0;
      for (const int c : out.row_token_counts) {
        expect += static_cast<size_t>(c);
      }
    }
    HEXLLM_CHECK(out.tokens.size() == expect);
    if (r_.job_tokens.size() < jobs_.size()) {
      r_.job_tokens.resize(jobs_.size());
    }
  }

  // Token distribution. Plain steps commit one token per row; a speculative cycle commits
  // row_token_counts[i] tokens for row i (tokens flattened row-major) and the per-row
  // gamma cap above guarantees committed <= remaining — never past the decode budget.
  size_t tok_off = 0;
  for (size_t i = 0; i < row_slots_.size(); ++i) {
    const int s = row_slots_[i];
    Slot& sl = slots_[static_cast<size_t>(s)];
    const int committed = out.row_token_counts.empty() ? 1 : out.row_token_counts[i];
    sl.context += committed;
    if (sl.remaining <= 0) {
      tok_off += static_cast<size_t>(committed);
      continue;  // padding row riding out a static wave
    }
    HEXLLM_CHECK(committed <= sl.remaining);
    if (!out.tokens.empty()) {
      const int job_id = jobs_[static_cast<size_t>(sl.job)].job.id;
      for (int k = 0; k < committed; ++k) {
        const int tok = out.tokens[tok_off + static_cast<size_t>(k)];
        r_.job_tokens[static_cast<size_t>(sl.job)].push_back(tok);
        ev.tokens.push_back(StepEvents::Token{job_id, tok, r_.makespan_s});
      }
    }
    tok_off += static_cast<size_t>(committed);
    if (row_gammas_[i] > 0) {
      r_.spec_proposed_tokens += row_gammas_[i];
      r_.spec_accepted_tokens += committed - 1;  // minus the target's own bonus token
    }
    sl.remaining -= committed;
    r_.decoded_tokens += committed;
    if (sl.remaining == 0) {
      Complete(s, ev);
    }
  }
  if (options_.policy == SchedulePolicy::kStaticWaves) {
    bool wave_done = true;
    for (const int s : row_slots_) {
      if (slots_[static_cast<size_t>(s)].remaining > 0) {
        wave_done = false;
        break;
      }
    }
    if (wave_done) {
      for (const int s : row_slots_) {
        backend_.ReleaseSlot(s);
        slots_[static_cast<size_t>(s)].job = -1;
        free_slots_.push_back(s);
        --occupied_;
      }
    }
  }
  ++step_idx_;
  ev.stepped = true;
  ev.time_s = r_.makespan_s;
  return ev;
}

void ContinuousBatcher::FinalizeMetrics() {
  reg_.Count("serve.steps", r_.steps);
  reg_.Count("serve.decoded_tokens", r_.decoded_tokens);
  reg_.Count("serve.prefilled_tokens", r_.prefilled_tokens);
  reg_.Count("serve.forked_admissions", r_.forked_admissions);
  reg_.Count("serve.admission_deferrals", r_.admission_deferrals);
  reg_.Count("serve.preemptions", r_.preemptions);
  reg_.Count("serve.resumes", r_.resumes);
  reg_.Count("serve.admissions", static_cast<int64_t>(r_.admissions.size()));
  reg_.Count("serve.completions", static_cast<int64_t>(r_.completions.size()));
  reg_.Set("serve.makespan_seconds", r_.makespan_s);
  reg_.Set("serve.prefill_seconds", r_.prefill_s);
  reg_.Set("serve.decode_seconds", r_.decode_s);
  reg_.Set("serve.idle_seconds", r_.idle_s);
  reg_.Set("serve.energy_joules", r_.energy_j);
  reg_.Set("serve.tokens_per_second", r_.tokens_per_second);
  reg_.Set("serve.avg_active_batch", r_.avg_active_batch);
  reg_.Set("serve.avg_context", r_.avg_context);
  reg_.Set("serve.slot_utilization", r_.slot_utilization);
  if (r_.spec_cycles > 0) {
    // Gated on use so non-speculative runs keep byte-identical metric snapshots.
    reg_.Count("spec.cycles", r_.spec_cycles);
    reg_.Count("spec.proposed_tokens", r_.spec_proposed_tokens);
    reg_.Count("spec.accepted_tokens", r_.spec_accepted_tokens);
    reg_.Count("spec.rejected_tokens", r_.spec_proposed_tokens - r_.spec_accepted_tokens);
    reg_.Set("spec.acceptance_rate",
             r_.spec_proposed_tokens > 0
                 ? static_cast<double>(r_.spec_accepted_tokens) /
                       static_cast<double>(r_.spec_proposed_tokens)
                 : 0.0);
  }
  if (r_.flash_bytes > 0 || r_.flash_s > 0.0) {
    // Gated on use so runs without tiered offload keep byte-identical metric snapshots.
    reg_.Count("serve.flash_bytes", r_.flash_bytes);
    reg_.Set("serve.flash_seconds", r_.flash_s);
  }
  reg_.Set("exec.overlap.saved_seconds", overlap_saved_s_);
  reg_.Set("exec.overlap.lm_head_seconds", overlap_lm_s_);
  reg_.Set("exec.overlap.ratio",
           overlap_lm_s_ > 0.0 ? overlap_saved_s_ / overlap_lm_s_ : 0.0);
  hexec::ExportPoolMetrics(reg_);
  hkv::ExportKvStats(r_.kv, reg_);
  backend_.ExportMetrics(reg_);
  r_.metrics = reg_.Snapshot();
}

ScheduleResult ContinuousBatcher::Finish() {
  finished_ = true;
  if (!poisoned_) {
    r_.steps = step_idx_;
    r_.kv = backend_.kv_stats();
    if (r_.makespan_s > 0.0) {
      r_.tokens_per_second = static_cast<double>(r_.decoded_tokens) / r_.makespan_s;
    }
    if (step_idx_ > 0) {
      r_.avg_active_batch =
          static_cast<double>(useful_rows_) / static_cast<double>(step_idx_);
    }
    if (occupied_rows_ > 0) {
      r_.slot_utilization =
          static_cast<double>(useful_rows_) / static_cast<double>(occupied_rows_);
      r_.avg_context =
          static_cast<double>(context_row_sum_) / static_cast<double>(occupied_rows_);
    }
  }
  FinalizeMetrics();
  return std::move(r_);
}

ScheduleResult ContinuousBatcher::Run(const std::vector<ServeJob>& jobs) {
  Reset();

  if (jobs.empty()) {
    return Finish();  // zeroed result — the old schedulers divided by steps/makespan (NaN)
  }
  const int n = static_cast<int>(jobs.size());

  // Validate the stream up front and report malformed jobs as an error result instead of
  // CHECK-aborting: job streams come from workload producers (benches, sweeps, user input),
  // not trusted internals. Fork edges get the full treatment — a bad parent reference would
  // otherwise surface as silent KV corruption deep in a backend.
  const auto reject = [&](const ServeJob& j, const std::string& why) {
    poisoned_ = true;
    r_.error = "job " + std::to_string(j.id) + ": " + why;
    return Finish();
  };
  bool any_fork = false;
  for (const ServeJob& j : jobs) {
    any_fork = any_fork || j.parent_job >= 0;
  }
  std::map<int, int> id_index;  // job id -> input index, only needed for fork edges
  if (any_fork) {
    for (int j = 0; j < n; ++j) {
      const auto [it, inserted] = id_index.try_emplace(jobs[static_cast<size_t>(j)].id, j);
      if (!inserted) {
        return reject(jobs[static_cast<size_t>(j)],
                      "duplicate job id in a stream with fork edges");
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    const ServeJob& job = jobs[static_cast<size_t>(j)];
    if (job.decode_tokens < 1) {
      return reject(job, "decode_tokens must be >= 1");
    }
    if (job.prompt_tokens < 0 || job.context_tokens < 0 || job.barrier < 0) {
      return reject(job, "prompt_tokens, context_tokens and barrier must be non-negative");
    }
    const int64_t total = static_cast<int64_t>(job.prompt_tokens) + job.context_tokens +
                          job.decode_tokens;
    if (total > backend_.max_context()) {
      return reject(job, "prompt + context + decode (" + std::to_string(total) +
                             ") exceeds the backend context limit (" +
                             std::to_string(backend_.max_context()) + ")");
    }
    if (job.parent_job < 0) {
      continue;
    }
    const auto pit = id_index.find(job.parent_job);
    if (pit == id_index.end()) {
      return reject(job, "parent_job " + std::to_string(job.parent_job) +
                             " is not in the stream");
    }
    if (pit->second == j) {
      return reject(job, "job forks itself");
    }
    const ServeJob& parent = jobs[static_cast<size_t>(pit->second)];
    if (job.prompt_group < 0 || parent.prompt_group != job.prompt_group) {
      return reject(job, "fork parent must share a non-negative prompt_group");
    }
    if (parent.barrier >= job.barrier) {
      return reject(job, "fork parent must complete at an earlier barrier");
    }
    const int parent_end = JobEndLength(parent);
    if (job.prompt_tokens + job.context_tokens < parent_end) {
      return reject(job, "fork context (" +
                             std::to_string(job.prompt_tokens + job.context_tokens) +
                             ") must cover the parent's final KV length (" +
                             std::to_string(parent_end) + ")");
    }
  }

  // Register the whole stream, then seed the admission queue with every group's first
  // barrier level (in input order — all priorities equal keeps the legacy FIFO).
  for (const ServeJob& job : jobs) {
    Register(job);
  }
  if (any_fork) {
    for (int j = 0; j < n; ++j) {
      const int p = jobs_[static_cast<size_t>(j)].parent_index;
      if (p >= 0) {
        ++pending_children_[static_cast<size_t>(p)];
      }
    }
  }
  {
    std::vector<std::map<int, std::vector<int>>> by_barrier(groups_.size());
    for (int j = 0; j < n; ++j) {
      by_barrier[static_cast<size_t>(jobs_[static_cast<size_t>(j)].group)]
                [jobs[static_cast<size_t>(j)].barrier]
                    .push_back(j);
    }
    for (size_t g = 0; g < groups_.size(); ++g) {
      groups_[g].levels.assign(by_barrier[g].begin(), by_barrier[g].end());
      groups_[g].pending = static_cast<int>(groups_[g].levels.front().second.size());
    }
  }
  for (int j = 0; j < n; ++j) {
    const Group& g = groups_[static_cast<size_t>(jobs_[static_cast<size_t>(j)].group)];
    if (jobs[static_cast<size_t>(j)].barrier == g.levels.front().first) {
      Enqueue(j, /*resume=*/false);
    }
  }

  while (!poisoned_ && completed_ < n) {
    const StepEvents ev = Step();
    // Barrier bookkeeping guarantees an admissible (or KV-poisoning) job exists whenever
    // work remains, so an idle step here would loop forever — that's a scheduler bug.
    HEXLLM_CHECK(ev.stepped || poisoned_);
  }
  return Finish();
}

}  // namespace hserve

#include "src/serving/continuous_batcher.h"

#include <algorithm>
#include <deque>
#include <map>
#include <string>
#include <utility>

#include "src/base/check.h"
#include "src/exec/thread_pool.h"

namespace hserve {

namespace {

// Lays one priced decode step onto the trace lanes: the engine busy overlays share the
// NPU-side span; the CPU lm_head either serializes after it (charged_s == c.total_s) or —
// when the step was charged with the NPU/CPU overlap rule — runs concurrently, right-aligned
// against the mailbox hop that ends the charged span.
void TraceStep(hrt::TraceBuilder& tb, double t0, const hrt::StepCost& c, double charged_s,
               int batch, int mean_context) {
  const double npu_s = c.linear_s + c.attention_s + c.misc_s;
  const bool overlapped = charged_s < c.total_s;
  const std::string suffix =
      " b=" + std::to_string(batch) + " ctx=" + std::to_string(mean_context);
  if (c.dma_busy_s > 0.0) {
    tb.Add("DMA", "weights" + suffix, t0, std::min(c.dma_busy_s, npu_s));
  }
  if (c.hvx_busy_s > 0.0) {
    tb.Add("HVX", "dequant+attn" + suffix, t0, std::min(c.hvx_busy_s, npu_s));
  }
  if (c.hmx_busy_s > 0.0) {
    tb.Add("HMX", "gemm" + suffix, t0, std::min(c.hmx_busy_s, npu_s));
  }
  if (c.lm_head_s > 0.0) {
    if (overlapped) {
      tb.Add("CPU", "lm_head (overlapped)" + suffix,
             t0 + std::max(0.0, charged_s - c.comm_s - c.lm_head_s), c.lm_head_s);
    } else {
      tb.Add("CPU", "lm_head" + suffix, t0 + npu_s, c.lm_head_s);
    }
  }
  if (c.comm_s > 0.0) {
    tb.Add("COMM", "mailbox", t0 + charged_s - c.comm_s, c.comm_s);
  }
}

}  // namespace

ContinuousBatcher::ContinuousBatcher(ExecutionBackend& backend, const ServeOptions& options)
    : backend_(backend), options_(options) {
  HEXLLM_CHECK(options_.max_batch >= 1);
}

ScheduleResult ContinuousBatcher::Run(const std::vector<ServeJob>& jobs) {
  ScheduleResult r;

  // NPU/CPU overlap accounting: serial-minus-charged seconds reclaimed by pipelining the
  // lm_head, and the lm_head seconds of the steps that overlapped (their ratio is the
  // exec.overlap.ratio gauge — 1.0 means every overlapped lm_head hid completely).
  double overlap_saved_s = 0.0;
  double overlap_lm_s = 0.0;

  // Per-run metrics registry. The histograms fill during the step loop; everything else is
  // published by `finalize`, which runs on every return path so even error results carry a
  // consistent snapshot. The serve.* scalars intentionally mirror ScheduleResult's fields —
  // tests assert the two views agree.
  obs::Registry reg;
  obs::Histogram& step_seconds_hist = reg.histogram(
      "serve.step_seconds", obs::HistogramBuckets::Exponential(1e-5, 4.0, 12));
  obs::Histogram& step_active_hist = reg.histogram(
      "serve.step_active_rows", obs::HistogramBuckets::Linear(1.0, options_.max_batch));
  const auto finalize = [&]() {
    reg.Count("serve.steps", r.steps);
    reg.Count("serve.decoded_tokens", r.decoded_tokens);
    reg.Count("serve.prefilled_tokens", r.prefilled_tokens);
    reg.Count("serve.forked_admissions", r.forked_admissions);
    reg.Count("serve.admission_deferrals", r.admission_deferrals);
    reg.Count("serve.admissions", static_cast<int64_t>(r.admissions.size()));
    reg.Count("serve.completions", static_cast<int64_t>(r.completions.size()));
    reg.Set("serve.makespan_seconds", r.makespan_s);
    reg.Set("serve.prefill_seconds", r.prefill_s);
    reg.Set("serve.decode_seconds", r.decode_s);
    reg.Set("serve.energy_joules", r.energy_j);
    reg.Set("serve.tokens_per_second", r.tokens_per_second);
    reg.Set("serve.avg_active_batch", r.avg_active_batch);
    reg.Set("serve.avg_context", r.avg_context);
    reg.Set("serve.slot_utilization", r.slot_utilization);
    reg.Set("exec.overlap.saved_seconds", overlap_saved_s);
    reg.Set("exec.overlap.lm_head_seconds", overlap_lm_s);
    reg.Set("exec.overlap.ratio", overlap_lm_s > 0.0 ? overlap_saved_s / overlap_lm_s : 0.0);
    hexec::ExportPoolMetrics(reg);
    hkv::ExportKvStats(r.kv, reg);
    backend_.ExportMetrics(reg);
    r.metrics = reg.Snapshot();
  };

  if (jobs.empty()) {
    finalize();
    return r;  // zeroed result — the old schedulers divided by steps/makespan here (NaN)
  }
  const int n = static_cast<int>(jobs.size());

  // Validate the stream up front and report malformed jobs as an error result instead of
  // CHECK-aborting: job streams come from workload producers (benches, sweeps, user input),
  // not trusted internals. Fork edges get the full treatment — a bad parent reference would
  // otherwise surface as silent KV corruption deep in a backend.
  const auto reject = [&](const ServeJob& j, const std::string& why) {
    r.error = "job " + std::to_string(j.id) + ": " + why;
    finalize();
    return r;
  };
  bool any_fork = false;
  for (const ServeJob& j : jobs) {
    any_fork = any_fork || j.parent_job >= 0;
  }
  std::map<int, int> id_index;  // job id -> input index, only needed for fork edges
  if (any_fork) {
    for (int j = 0; j < n; ++j) {
      const auto [it, inserted] = id_index.try_emplace(jobs[static_cast<size_t>(j)].id, j);
      if (!inserted) {
        return reject(jobs[static_cast<size_t>(j)],
                      "duplicate job id in a stream with fork edges");
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    const ServeJob& job = jobs[static_cast<size_t>(j)];
    if (job.decode_tokens < 1) {
      return reject(job, "decode_tokens must be >= 1");
    }
    if (job.prompt_tokens < 0 || job.context_tokens < 0 || job.barrier < 0) {
      return reject(job, "prompt_tokens, context_tokens and barrier must be non-negative");
    }
    const int64_t total = static_cast<int64_t>(job.prompt_tokens) + job.context_tokens +
                          job.decode_tokens;
    if (total > backend_.max_context()) {
      return reject(job, "prompt + context + decode (" + std::to_string(total) +
                             ") exceeds the backend context limit (" +
                             std::to_string(backend_.max_context()) + ")");
    }
    if (job.parent_job < 0) {
      continue;
    }
    const auto pit = id_index.find(job.parent_job);
    if (pit == id_index.end()) {
      return reject(job, "parent_job " + std::to_string(job.parent_job) +
                             " is not in the stream");
    }
    if (pit->second == j) {
      return reject(job, "job forks itself");
    }
    const ServeJob& parent = jobs[static_cast<size_t>(pit->second)];
    if (job.prompt_group < 0 || parent.prompt_group != job.prompt_group) {
      return reject(job, "fork parent must share a non-negative prompt_group");
    }
    if (parent.barrier >= job.barrier) {
      return reject(job, "fork parent must complete at an earlier barrier");
    }
    const int parent_end = parent.prompt_tokens + parent.context_tokens + parent.decode_tokens;
    if (job.prompt_tokens + job.context_tokens != parent_end) {
      return reject(job, "fork context (" +
                             std::to_string(job.prompt_tokens + job.context_tokens) +
                             ") must equal the parent's final KV length (" +
                             std::to_string(parent_end) + ")");
    }
  }
  // Children still waiting to map each job's retained KV; the snapshot drops at zero.
  std::vector<int> pending_children(static_cast<size_t>(n), 0);
  if (any_fork) {
    for (const ServeJob& j : jobs) {
      if (j.parent_job >= 0) {
        ++pending_children[static_cast<size_t>(id_index.at(j.parent_job))];
      }
    }
  }

  // Group structure: jobs at a group's current barrier level admit freely; the next level
  // opens only when every job of the current level has completed (expansion waves).
  struct Group {
    std::vector<std::pair<int, std::vector<int>>> levels;  // (barrier, job indices) ascending
    size_t cur = 0;
    int pending = 0;   // incomplete jobs at the current level
    int orig_id = -1;  // prompt_group id (keys the backend's prompt anchor), -1 = singleton
    int total = 0;
    int done = 0;      // completed jobs; == total releases the group's prompt anchor
  };
  std::vector<Group> groups;
  std::vector<int> job_group(static_cast<size_t>(n));
  {
    std::map<int, int> group_index;  // prompt_group id -> groups index
    for (int j = 0; j < n; ++j) {
      int g;
      if (jobs[static_cast<size_t>(j)].prompt_group >= 0) {
        auto [it, inserted] =
            group_index.try_emplace(jobs[static_cast<size_t>(j)].prompt_group,
                                    static_cast<int>(groups.size()));
        if (inserted) {
          groups.emplace_back();
          groups.back().orig_id = jobs[static_cast<size_t>(j)].prompt_group;
        }
        g = it->second;
      } else {
        g = static_cast<int>(groups.size());
        groups.emplace_back();
      }
      job_group[static_cast<size_t>(j)] = g;
      ++groups[static_cast<size_t>(g)].total;
    }
    std::vector<std::map<int, std::vector<int>>> by_barrier(groups.size());
    for (int j = 0; j < n; ++j) {
      by_barrier[static_cast<size_t>(job_group[static_cast<size_t>(j)])]
                [jobs[static_cast<size_t>(j)].barrier]
                    .push_back(j);
    }
    for (size_t g = 0; g < groups.size(); ++g) {
      groups[g].levels.assign(by_barrier[g].begin(), by_barrier[g].end());
      groups[g].pending = static_cast<int>(groups[g].levels.front().second.size());
    }
  }

  // Ready queue seeded in input order with every group's first barrier level.
  std::deque<int> ready;
  for (int j = 0; j < n; ++j) {
    const Group& g = groups[static_cast<size_t>(job_group[static_cast<size_t>(j)])];
    if (jobs[static_cast<size_t>(j)].barrier == g.levels.front().first) {
      ready.push_back(j);
    }
  }

  // Slot pool. The free list is LIFO so a slot freed on step k is the first reused on step
  // k+1 (its KV region is the hottest).
  struct Slot {
    int job = -1;       // job index, -1 when free
    int context = 0;    // current KV length
    int remaining = 0;  // useful tokens still to decode (0 => padding row in a static wave)
  };
  std::vector<Slot> slots(static_cast<size_t>(options_.max_batch));
  std::vector<int> free_slots;
  free_slots.reserve(slots.size());
  for (int s = options_.max_batch - 1; s >= 0; --s) {
    free_slots.push_back(s);
  }
  std::vector<bool> group_charged(groups.size(), false);

  int occupied = 0;
  int completed = 0;
  int64_t step_idx = 0;
  int64_t useful_rows = 0;
  int64_t occupied_rows = 0;
  int64_t context_row_sum = 0;
  int traced_steps = 0;
  int traced_admissions = 0;

  const auto admit = [&](int j) {
    const int slot = free_slots.back();
    free_slots.pop_back();
    const ServeJob& job = jobs[static_cast<size_t>(j)];
    const int g = job_group[static_cast<size_t>(j)];
    int charged = 0;
    if (job.prompt_tokens > 0 && !group_charged[static_cast<size_t>(g)]) {
      charged = job.prompt_tokens;
      group_charged[static_cast<size_t>(g)] = true;
    }
    const int context = job.prompt_tokens + job.context_tokens;
    const double t0 = r.makespan_s;
    const double prefill_s = backend_.AdmitSlot(slot, job, context, charged);
    r.makespan_s += prefill_s;
    r.prefill_s += prefill_s;
    r.prefilled_tokens += charged;
    slots[static_cast<size_t>(slot)] = Slot{j, context, job.decode_tokens};
    ++occupied;
    if (job.parent_job >= 0) {
      ++r.forked_admissions;
      // Last waiting child admitted: the parent's retained KV snapshot can drop (the
      // children's own block references keep the shared blocks alive).
      const int pidx = id_index.at(job.parent_job);
      if (--pending_children[static_cast<size_t>(pidx)] == 0) {
        backend_.DropRetained(job.parent_job);
      }
    }
    r.admissions.push_back(Admission{job.id, slot, step_idx, r.makespan_s});
    if (options_.record_trace && prefill_s > 0.0 &&
        traced_admissions < options_.max_trace_steps) {
      r.trace.Add("ADMIT", "prefill job " + std::to_string(job.id), t0, prefill_s);
      ++traced_admissions;
    }
  };

  std::vector<int> row_slots;
  std::vector<int> row_contexts;
  row_slots.reserve(slots.size());
  row_contexts.reserve(slots.size());

  while (completed < n) {
    // Admission: continuous mode refills any free slot; static mode opens a new wave only
    // once the previous one fully drained.
    if (options_.policy == SchedulePolicy::kContinuous || occupied == 0) {
      while (!free_slots.empty() && !ready.empty()) {
        const int j = ready.front();
        const ServeJob& job = jobs[static_cast<size_t>(j)];
        if (!backend_.CanAdmit(job, job.prompt_tokens + job.context_tokens)) {
          ++r.admission_deferrals;
          break;  // KV pool/budget full: wait for running jobs to complete and free blocks
        }
        admit(j);
        ready.pop_front();
      }
    }
    if (occupied == 0) {
      // Barrier bookkeeping guarantees an admissible job exists, so an empty batch means
      // the KV budget cannot fit the front job even alone — deferring would deadlock.
      HEXLLM_CHECK(!ready.empty());
      r.error = "job " + std::to_string(jobs[static_cast<size_t>(ready.front())].id) +
                ": KV budget too small to admit into an empty batch";
      r.steps = step_idx;
      r.kv = backend_.kv_stats();
      finalize();
      return r;
    }

    row_slots.clear();
    row_contexts.clear();
    int useful = 0;
    for (int s = 0; s < options_.max_batch; ++s) {
      const Slot& sl = slots[static_cast<size_t>(s)];
      if (sl.job >= 0) {
        row_slots.push_back(s);
        row_contexts.push_back(sl.context);
        context_row_sum += sl.context;
        if (sl.remaining > 0) {
          ++useful;
        }
      }
    }

    const double t0 = r.makespan_s;
    const StepOutcome out = backend_.Step(row_slots, row_contexts);
    // NPU/CPU overlap (docs/threading_model.md): with >= 2 rows in flight, the CPU lm_head
    // of this step hides under the next step's NPU time (double-buffered logits keep its
    // inputs alive), so the step charges max(npu, lm_head) + comm instead of their sum. The
    // charged value is used uniformly — makespan, decode time, energy and the step-latency
    // histogram all see the same number, keeping makespan == prefill + decode exact.
    const double serial_s = out.cost.total_s;
    const double npu_s = serial_s - out.cost.lm_head_s - out.cost.comm_s;
    double charged_s = serial_s;
    if (options_.overlap_lm_head && row_slots.size() >= 2 && out.cost.lm_head_s > 0.0 &&
        npu_s > 0.0) {
      charged_s = std::max(npu_s, out.cost.lm_head_s) + out.cost.comm_s;
      overlap_saved_s += serial_s - charged_s;
      overlap_lm_s += out.cost.lm_head_s;
    }
    r.makespan_s += charged_s;
    r.decode_s += charged_s;
    r.energy_j += out.watts * charged_s;
    step_seconds_hist.Observe(charged_s);
    step_active_hist.Observe(static_cast<double>(useful));
    useful_rows += useful;
    occupied_rows += static_cast<int64_t>(row_slots.size());
    if (options_.record_steps) {
      r.step_active.push_back(useful);
      r.step_occupied.push_back(static_cast<int>(row_slots.size()));
    }
    if (options_.record_trace && traced_steps < options_.max_trace_steps) {
      int64_t ctx_sum = 0;
      for (int c : row_contexts) {
        ctx_sum += c;
      }
      TraceStep(r.trace, t0, out.cost, charged_s, static_cast<int>(row_slots.size()),
                static_cast<int>(ctx_sum / static_cast<int64_t>(row_contexts.size())));
      ++traced_steps;
    }
    if (!out.tokens.empty()) {
      HEXLLM_CHECK(out.tokens.size() == row_slots.size());
      if (r.job_tokens.empty()) {
        r.job_tokens.resize(static_cast<size_t>(n));
      }
    }

    for (size_t i = 0; i < row_slots.size(); ++i) {
      const int s = row_slots[i];
      Slot& sl = slots[static_cast<size_t>(s)];
      ++sl.context;
      if (sl.remaining <= 0) {
        continue;  // padding row riding out a static wave
      }
      if (!out.tokens.empty()) {
        r.job_tokens[static_cast<size_t>(sl.job)].push_back(out.tokens[i]);
      }
      --sl.remaining;
      ++r.decoded_tokens;
      if (sl.remaining > 0) {
        continue;
      }
      ++completed;
      r.completions.push_back(
          Completion{jobs[static_cast<size_t>(sl.job)].id, s, step_idx, r.makespan_s});
      if (pending_children[static_cast<size_t>(sl.job)] > 0) {
        // Fork children will map this job's final KV; snapshot it before the slot (and its
        // block references) can be released or stepped further.
        backend_.RetainKv(s, jobs[static_cast<size_t>(sl.job)].id);
      }
      Group& g = groups[static_cast<size_t>(job_group[static_cast<size_t>(sl.job)])];
      if (++g.done == g.total && g.orig_id >= 0) {
        backend_.ReleaseGroup(g.orig_id);  // last group job done: drop the prompt anchor
      }
      if (--g.pending == 0 && g.cur + 1 < g.levels.size()) {
        ++g.cur;
        g.pending = static_cast<int>(g.levels[g.cur].second.size());
        for (int j2 : g.levels[g.cur].second) {
          ready.push_back(j2);
        }
      }
      if (options_.policy == SchedulePolicy::kContinuous) {
        backend_.ReleaseSlot(s);
        sl.job = -1;
        free_slots.push_back(s);
        --occupied;
      }
    }
    if (options_.policy == SchedulePolicy::kStaticWaves) {
      bool wave_done = true;
      for (int s : row_slots) {
        if (slots[static_cast<size_t>(s)].remaining > 0) {
          wave_done = false;
          break;
        }
      }
      if (wave_done) {
        for (int s : row_slots) {
          backend_.ReleaseSlot(s);
          slots[static_cast<size_t>(s)].job = -1;
          free_slots.push_back(s);
          --occupied;
        }
      }
    }
    ++step_idx;
  }

  r.steps = step_idx;
  r.kv = backend_.kv_stats();
  if (r.makespan_s > 0.0) {
    r.tokens_per_second = static_cast<double>(r.decoded_tokens) / r.makespan_s;
  }
  if (step_idx > 0) {
    r.avg_active_batch = static_cast<double>(useful_rows) / static_cast<double>(step_idx);
  }
  if (occupied_rows > 0) {
    r.slot_utilization =
        static_cast<double>(useful_rows) / static_cast<double>(occupied_rows);
    r.avg_context =
        static_cast<double>(context_row_sum) / static_cast<double>(occupied_rows);
  }
  finalize();
  return r;
}

}  // namespace hserve

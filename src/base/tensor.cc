#include "src/base/tensor.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>

namespace hexllm {

const char* DTypeName(DType t) {
  switch (t) {
    case DType::kF32:
      return "f32";
    case DType::kF16:
      return "f16";
    case DType::kU8:
      return "u8";
    case DType::kI32:
      return "i32";
  }
  return "?";
}

AlignedBuffer::AlignedBuffer(size_t bytes) : size_(bytes) {
  if (bytes == 0) {
    return;
  }
  const size_t padded = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  data_ = static_cast<uint8_t*>(::operator new(padded, std::align_val_t(kAlignment)));
  std::memset(data_, 0, padded);
}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& o) noexcept {
  if (this != &o) {
    this->~AlignedBuffer();
    data_ = o.data_;
    size_ = o.size_;
    o.data_ = nullptr;
    o.size_ = 0;
  }
  return *this;
}

AlignedBuffer::~AlignedBuffer() {
  if (data_ != nullptr) {
    ::operator delete(data_, std::align_val_t(kAlignment));
    data_ = nullptr;
  }
}

Tensor::Tensor(DType dtype, std::vector<int64_t> shape) : dtype_(dtype), shape_(std::move(shape)) {
  numel_ = 1;
  for (int64_t d : shape_) {
    HEXLLM_CHECK(d >= 0);
    numel_ *= d;
  }
  storage_ = AlignedBuffer(static_cast<size_t>(numel_) * DTypeSize(dtype_));
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    os << (i > 0 ? ", " : "") << shape_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace hexllm

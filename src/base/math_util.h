// Small integer/float helpers shared across the project.
#ifndef SRC_BASE_MATH_UTIL_H_
#define SRC_BASE_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>

#include "src/base/check.h"

namespace hexllm {

constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

constexpr int64_t RoundUp(int64_t a, int64_t b) { return CeilDiv(a, b) * b; }

constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

inline int64_t AlignUp(int64_t value, int64_t alignment) {
  HEXLLM_DCHECK(IsPowerOfTwo(static_cast<uint64_t>(alignment)));
  return (value + alignment - 1) & ~(alignment - 1);
}

template <typename T>
constexpr T Clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace hexllm

#endif  // SRC_BASE_MATH_UTIL_H_

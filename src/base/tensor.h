// Minimal dense tensor: row-major, 128-byte-aligned storage, explicit dtype.
//
// This is deliberately small — kernels in src/kernels operate on raw spans with explicit
// strides (as real NPU kernels do); Tensor exists so the model/runtime layers can pass shapes
// and storage around safely.
#ifndef SRC_BASE_TENSOR_H_
#define SRC_BASE_TENSOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/fp16.h"

namespace hexllm {

enum class DType : uint8_t {
  kF32,
  kF16,
  kU8,
  kI32,
};

constexpr size_t DTypeSize(DType t) {
  switch (t) {
    case DType::kF32:
      return 4;
    case DType::kF16:
      return 2;
    case DType::kU8:
      return 1;
    case DType::kI32:
      return 4;
  }
  return 0;
}

const char* DTypeName(DType t);

// Owning, aligned, zero-initialized byte buffer. Alignment matches the HVX vector width
// (128 bytes) so emulated vector loads can assume aligned access.
class AlignedBuffer {
 public:
  static constexpr size_t kAlignment = 128;

  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t bytes);

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  AlignedBuffer(AlignedBuffer&& o) noexcept { *this = std::move(o); }
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  ~AlignedBuffer();

 private:
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

class Tensor {
 public:
  Tensor() = default;
  Tensor(DType dtype, std::vector<int64_t> shape);

  static Tensor Zeros(DType dtype, std::vector<int64_t> shape) {
    return Tensor(dtype, std::move(shape));
  }

  DType dtype() const { return dtype_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const {
    HEXLLM_DCHECK(i >= 0 && i < rank());
    return shape_[static_cast<size_t>(i)];
  }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t numel() const { return numel_; }
  size_t byte_size() const { return static_cast<size_t>(numel_) * DTypeSize(dtype_); }

  uint8_t* raw() { return storage_.data(); }
  const uint8_t* raw() const { return storage_.data(); }

  std::span<float> f32() {
    HEXLLM_DCHECK(dtype_ == DType::kF32);
    return {reinterpret_cast<float*>(raw()), static_cast<size_t>(numel_)};
  }
  std::span<const float> f32() const {
    HEXLLM_DCHECK(dtype_ == DType::kF32);
    return {reinterpret_cast<const float*>(raw()), static_cast<size_t>(numel_)};
  }
  std::span<F16> f16() {
    HEXLLM_DCHECK(dtype_ == DType::kF16);
    return {reinterpret_cast<F16*>(raw()), static_cast<size_t>(numel_)};
  }
  std::span<const F16> f16() const {
    HEXLLM_DCHECK(dtype_ == DType::kF16);
    return {reinterpret_cast<const F16*>(raw()), static_cast<size_t>(numel_)};
  }
  std::span<uint8_t> u8() {
    HEXLLM_DCHECK(dtype_ == DType::kU8);
    return {raw(), static_cast<size_t>(numel_)};
  }
  std::span<int32_t> i32() {
    HEXLLM_DCHECK(dtype_ == DType::kI32);
    return {reinterpret_cast<int32_t*>(raw()), static_cast<size_t>(numel_)};
  }

  // 2D accessors (row-major).
  float& At(int64_t r, int64_t c) {
    HEXLLM_DCHECK(rank() == 2 && dtype_ == DType::kF32);
    return reinterpret_cast<float*>(raw())[r * shape_[1] + c];
  }
  float At(int64_t r, int64_t c) const {
    HEXLLM_DCHECK(rank() == 2 && dtype_ == DType::kF32);
    return reinterpret_cast<const float*>(raw())[r * shape_[1] + c];
  }

  std::string ShapeString() const;

 private:
  DType dtype_ = DType::kF32;
  std::vector<int64_t> shape_;
  int64_t numel_ = 0;
  AlignedBuffer storage_;
};

}  // namespace hexllm

#endif  // SRC_BASE_TENSOR_H_

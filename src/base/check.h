// Lightweight runtime-check macros.
//
// HEXLLM_CHECK is always on (simulator correctness depends on it); HEXLLM_DCHECK compiles out
// in NDEBUG builds. Failures print the expression and location, then abort.
#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace hexllm {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line, msg[0] ? " — " : "",
               msg);
  std::abort();
}

}  // namespace hexllm

#define HEXLLM_CHECK(cond)                                         \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::hexllm::CheckFailed(#cond, __FILE__, __LINE__, "");        \
    }                                                              \
  } while (0)

#define HEXLLM_CHECK_MSG(cond, msg)                                \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::hexllm::CheckFailed(#cond, __FILE__, __LINE__, (msg));     \
    }                                                              \
  } while (0)

#ifdef NDEBUG
#define HEXLLM_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define HEXLLM_DCHECK(cond) HEXLLM_CHECK(cond)
#endif

#endif  // SRC_BASE_CHECK_H_

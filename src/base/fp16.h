// Software IEEE-754 binary16 ("half") with round-to-nearest-even conversion.
//
// The Hexagon HVX unit computes in FP16 (and, before V79, in the internal "qfloat" format —
// see hexsim/hvx.h for how that is modeled). The host has no portable native half type, so F16
// stores raw bits and converts through float for arithmetic. Conversions implement full IEEE
// semantics: subnormals, infinities, NaN, round-to-nearest-even.
#ifndef SRC_BASE_FP16_H_
#define SRC_BASE_FP16_H_

#include <cstdint>

namespace hexllm {

// Converts an IEEE binary32 value to binary16 bits (round-to-nearest-even).
uint16_t F32ToF16Bits(float f);

// Converts binary16 bits to the exactly-representable binary32 value.
float F16BitsToF32(uint16_t h);

// Value type wrapping binary16 bits. Trivially copyable; 2 bytes; usable in packed buffers.
class F16 {
 public:
  constexpr F16() : bits_(0) {}
  explicit F16(float f) : bits_(F32ToF16Bits(f)) {}

  static constexpr F16 FromBits(uint16_t bits) {
    F16 h;
    h.bits_ = bits;
    return h;
  }

  constexpr uint16_t bits() const { return bits_; }
  float ToFloat() const { return F16BitsToF32(bits_); }
  explicit operator float() const { return ToFloat(); }

  // Bitwise identity; NaNs with different payloads compare unequal (intentional — this is a
  // storage type, numeric comparisons should go through float).
  constexpr bool operator==(const F16& o) const { return bits_ == o.bits_; }
  constexpr bool operator!=(const F16& o) const { return bits_ != o.bits_; }

  static constexpr F16 Zero() { return FromBits(0); }
  static constexpr F16 NegInf() { return FromBits(0xFC00); }
  static constexpr F16 Inf() { return FromBits(0x7C00); }
  static constexpr F16 Lowest() { return FromBits(0xFBFF); }  // -65504
  static constexpr F16 Max() { return FromBits(0x7BFF); }     // +65504

 private:
  uint16_t bits_;
};

static_assert(sizeof(F16) == 2, "F16 must be exactly 2 bytes");

// Rounds a float through FP16 precision (the fundamental precision-loss primitive used by all
// FP16 kernel emulation).
inline float RoundToF16(float f) { return F16BitsToF32(F32ToF16Bits(f)); }

}  // namespace hexllm

#endif  // SRC_BASE_FP16_H_

// Software IEEE-754 binary16 ("half") with round-to-nearest-even conversion.
//
// The Hexagon HVX unit computes in FP16 (and, before V79, in the internal "qfloat" format —
// see hexsim/hvx.h for how that is modeled). The host has no portable native half type, so F16
// stores raw bits and converts through float for arithmetic. Conversions implement full IEEE
// semantics: subnormals, infinities, NaN, round-to-nearest-even.
//
// Both conversion directions are on the host-emulation hot path (every simulated FP16 op
// converts through float), so they are inline: F32ToF16Bits is constexpr bit math, and
// F16BitsToF32 reads a 64 Ki-entry table built at compile time from the same bit math — the
// table is exhaustive over the 16-bit input space, so the lookup is bit-identical to
// computing the conversion (fp16_test checks every entry).
#ifndef SRC_BASE_FP16_H_
#define SRC_BASE_FP16_H_

#include <array>
#include <bit>
#include <cstdint>

namespace hexllm {

// Converts an IEEE binary32 value to binary16 bits (round-to-nearest-even).
constexpr uint16_t F32ToF16Bits(float f) {
  const uint32_t x = std::bit_cast<uint32_t>(f);
  const uint32_t sign = (x >> 16) & 0x8000u;
  const uint32_t abs = x & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {
    // Inf or NaN. Preserve NaN-ness by forcing a quiet-bit payload.
    if (abs > 0x7F800000u) {
      return static_cast<uint16_t>(sign | 0x7E00u);
    }
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (abs >= 0x47800000u) {
    // Magnitude >= 2^16: overflows half range even before rounding.
    return static_cast<uint16_t>(sign | 0x7C00u);
  }

  const int32_t exp = static_cast<int32_t>(abs >> 23) - 127;  // unbiased
  if (exp < -24) {
    // Underflows to zero even after rounding (|f| < 2^-25 rounds to 0; 2^-25 itself ties to
    // even = 0).
    if (exp == -25 && (abs & 0x7FFFFFu) != 0) {
      return static_cast<uint16_t>(sign | 1u);  // just above 2^-25 rounds up to min subnormal
    }
    return static_cast<uint16_t>(sign);
  }
  if (exp < -14) {
    // Subnormal half. Shift the (implicit-1) mantissa right; round to nearest even.
    uint32_t mant = (abs & 0x7FFFFFu) | 0x800000u;
    const int shift = -exp - 14 + 13;  // bits to drop from the 24-bit mantissa
    const uint32_t kept = mant >> shift;
    const uint32_t dropped = mant & ((1u << shift) - 1);
    const uint32_t half = 1u << (shift - 1);
    uint32_t result = kept;
    if (dropped > half || (dropped == half && (kept & 1u))) {
      result += 1;  // may carry into the normal range — the encoding handles that naturally
    }
    return static_cast<uint16_t>(sign | result);
  }

  // Normal half. Round the 23-bit mantissa down to 10 bits, nearest-even.
  uint32_t half_exp = static_cast<uint32_t>(exp + 15) << 10;
  uint32_t mant = abs & 0x7FFFFFu;
  uint32_t kept = mant >> 13;
  uint32_t dropped = mant & 0x1FFFu;
  uint32_t out = sign | half_exp | kept;
  if (dropped > 0x1000u || (dropped == 0x1000u && (kept & 1u))) {
    out += 1;  // mantissa overflow carries into the exponent; 65504 -> inf handled above
  }
  return static_cast<uint16_t>(out);
}

namespace fp16_detail {

// The reference expansion: pure bit math, used to build the lookup table (and by fp16_test
// to cross-check every table entry).
constexpr float F16BitsToF32Compute(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  const uint32_t mant = h & 0x3FFu;

  if (exp == 0) {
    if (mant == 0) {
      return std::bit_cast<float>(sign);  // signed zero
    }
    // Subnormal: value = mant * 2^-24. Normalize into a binary32.
    int e = -1;
    uint32_t m = mant;
    while ((m & 0x400u) == 0) {
      m <<= 1;
      ++e;
    }
    m &= 0x3FFu;
    const uint32_t f32exp = static_cast<uint32_t>(127 - 15 - e) << 23;
    return std::bit_cast<float>(sign | f32exp | (m << 13));
  }
  if (exp == 31) {
    if (mant == 0) {
      return std::bit_cast<float>(sign | 0x7F800000u);
    }
    return std::bit_cast<float>(sign | 0x7F800000u | (mant << 13) | 0x400000u);  // quiet NaN
  }
  const uint32_t f32exp = (exp + 127 - 15) << 23;
  return std::bit_cast<float>(sign | f32exp | (mant << 13));
}

}  // namespace fp16_detail

// Exhaustive binary16 -> binary32 table (256 KiB, built at compile time in fp16.cc).
extern const std::array<float, 65536> kF16ToF32Table;

// Converts binary16 bits to the exactly-representable binary32 value.
inline float F16BitsToF32(uint16_t h) { return kF16ToF32Table[h]; }

// Value type wrapping binary16 bits. Trivially copyable; 2 bytes; usable in packed buffers.
class F16 {
 public:
  constexpr F16() : bits_(0) {}
  explicit constexpr F16(float f) : bits_(F32ToF16Bits(f)) {}

  static constexpr F16 FromBits(uint16_t bits) {
    F16 h;
    h.bits_ = bits;
    return h;
  }

  constexpr uint16_t bits() const { return bits_; }
  float ToFloat() const { return F16BitsToF32(bits_); }
  explicit operator float() const { return ToFloat(); }

  // Bitwise identity; NaNs with different payloads compare unequal (intentional — this is a
  // storage type, numeric comparisons should go through float).
  constexpr bool operator==(const F16& o) const { return bits_ == o.bits_; }
  constexpr bool operator!=(const F16& o) const { return bits_ != o.bits_; }

  static constexpr F16 Zero() { return FromBits(0); }
  static constexpr F16 NegInf() { return FromBits(0xFC00); }
  static constexpr F16 Inf() { return FromBits(0x7C00); }
  static constexpr F16 Lowest() { return FromBits(0xFBFF); }  // -65504
  static constexpr F16 Max() { return FromBits(0x7BFF); }     // +65504

 private:
  uint16_t bits_;
};

static_assert(sizeof(F16) == 2, "F16 must be exactly 2 bytes");

// Rounds a float through FP16 precision (the fundamental precision-loss primitive used by all
// FP16 kernel emulation).
inline float RoundToF16(float f) { return F16BitsToF32(F32ToF16Bits(f)); }

}  // namespace hexllm

#endif  // SRC_BASE_FP16_H_

// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// Every stochastic component in the reproduction (synthetic weights, sampling, reward-model
// noise) draws from an explicitly-seeded Rng so experiments are bit-reproducible.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cmath>
#include <cstdint>

namespace hexllm {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform in [0, 1).
  float NextFloat() { return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f; }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextU64() % bound; }

  // Standard normal via Box-Muller (no caching; simple and deterministic).
  double NextGaussian() {
    double u1 = NextDouble();
    while (u1 <= 1e-300) {
      u1 = NextDouble();
    }
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Bernoulli draw.
  bool NextBool(double p) { return NextDouble() < p; }

  // Exponential with rate 1.
  double NextExponential() {
    double u = NextDouble();
    while (u <= 0.0) {
      u = NextDouble();
    }
    return -std::log(u);
  }

  // Derives an independent stream (for per-worker/per-sample reproducibility).
  Rng Fork(uint64_t stream_id) { return Rng(NextU64() ^ (stream_id * 0xA24BAED4963EE407ull)); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace hexllm

#endif  // SRC_BASE_RNG_H_

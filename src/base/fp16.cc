#include "src/base/fp16.h"

namespace hexllm {
namespace {

constexpr std::array<float, 65536> BuildF16Table() {
  std::array<float, 65536> table{};
  for (uint32_t h = 0; h < 65536; ++h) {
    table[h] = fp16_detail::F16BitsToF32Compute(static_cast<uint16_t>(h));
  }
  return table;
}

}  // namespace

constexpr std::array<float, 65536> kF16ToF32Table = BuildF16Table();

}  // namespace hexllm

#include "src/base/fp16.h"

#include <bit>
#include <cstring>

namespace hexllm {
namespace {

inline uint32_t F32Bits(float f) { return std::bit_cast<uint32_t>(f); }
inline float BitsF32(uint32_t u) { return std::bit_cast<float>(u); }

}  // namespace

uint16_t F32ToF16Bits(float f) {
  const uint32_t x = F32Bits(f);
  const uint32_t sign = (x >> 16) & 0x8000u;
  const uint32_t abs = x & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {
    // Inf or NaN. Preserve NaN-ness by forcing a quiet-bit payload.
    if (abs > 0x7F800000u) {
      return static_cast<uint16_t>(sign | 0x7E00u);
    }
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (abs >= 0x47800000u) {
    // Magnitude >= 2^16: overflows half range even before rounding.
    return static_cast<uint16_t>(sign | 0x7C00u);
  }

  const int32_t exp = static_cast<int32_t>(abs >> 23) - 127;  // unbiased
  if (exp < -24) {
    // Underflows to zero even after rounding (|f| < 2^-25 rounds to 0; 2^-25 itself ties to
    // even = 0).
    if (exp == -25 && (abs & 0x7FFFFFu) != 0) {
      return static_cast<uint16_t>(sign | 1u);  // just above 2^-25 rounds up to min subnormal
    }
    return static_cast<uint16_t>(sign);
  }
  if (exp < -14) {
    // Subnormal half. Shift the (implicit-1) mantissa right; round to nearest even.
    uint32_t mant = (abs & 0x7FFFFFu) | 0x800000u;
    const int shift = -exp - 14 + 13;  // bits to drop from the 24-bit mantissa
    const uint32_t kept = mant >> shift;
    const uint32_t dropped = mant & ((1u << shift) - 1);
    const uint32_t half = 1u << (shift - 1);
    uint32_t result = kept;
    if (dropped > half || (dropped == half && (kept & 1u))) {
      result += 1;  // may carry into the normal range — the encoding handles that naturally
    }
    return static_cast<uint16_t>(sign | result);
  }

  // Normal half. Round the 23-bit mantissa down to 10 bits, nearest-even.
  uint32_t half_exp = static_cast<uint32_t>(exp + 15) << 10;
  uint32_t mant = abs & 0x7FFFFFu;
  uint32_t kept = mant >> 13;
  uint32_t dropped = mant & 0x1FFFu;
  uint32_t out = sign | half_exp | kept;
  if (dropped > 0x1000u || (dropped == 0x1000u && (kept & 1u))) {
    out += 1;  // mantissa overflow carries into the exponent; 65504 -> inf handled above
  }
  return static_cast<uint16_t>(out);
}

float F16BitsToF32(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  const uint32_t mant = h & 0x3FFu;

  if (exp == 0) {
    if (mant == 0) {
      return BitsF32(sign);  // signed zero
    }
    // Subnormal: value = mant * 2^-24. Normalize into a binary32.
    int e = -1;
    uint32_t m = mant;
    while ((m & 0x400u) == 0) {
      m <<= 1;
      ++e;
    }
    m &= 0x3FFu;
    const uint32_t f32exp = static_cast<uint32_t>(127 - 15 - e) << 23;
    return BitsF32(sign | f32exp | (m << 13));
  }
  if (exp == 31) {
    if (mant == 0) {
      return BitsF32(sign | 0x7F800000u);
    }
    return BitsF32(sign | 0x7F800000u | (mant << 13) | 0x400000u);  // quiet NaN
  }
  const uint32_t f32exp = (exp + 127 - 15) << 23;
  return BitsF32(sign | f32exp | (mant << 13));
}

}  // namespace hexllm

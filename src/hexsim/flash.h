// First-order flash-storage model: the KV tier below DRAM (docs/long_context.md).
//
// Mobile UFS parts sustain a few GB/s sequential read and less write, with a per-operation
// latency far above DRAM — so the model mirrors the DmaEngine charging idiom:
// `bytes / bandwidth + per-op latency` per operation, read and write asymmetric. There is no
// descriptor machinery: KV offload moves whole blocks (hundreds of KB), so one op per block
// is the right granularity.
//
// Writes additionally accumulate a monotonic wear counter (ops + bytes) that survives
// ResetStats — flash endurance is the reason demotion policy matters on a phone, and the
// bench reports it so a sweep can show write-amplification of an eviction policy.
//
// Purely an accountant: the engine never owns payload bytes (hkv::KvOffloadEngine does).
#ifndef SRC_HEXSIM_FLASH_H_
#define SRC_HEXSIM_FLASH_H_

#include <cstdint>

namespace hexsim {

// Calibrated to a mid-range UFS 3.1/4.0 envelope; the bench sweeps read_gbps downward to
// show throughput degrading with offload bandwidth.
struct FlashSpec {
  double read_gbps = 3.5;
  double write_gbps = 1.5;
  double read_latency_us = 80.0;   // per-op setup/completion (command queue + NAND sense)
  double write_latency_us = 120.0;  // program latency exceeds read
};

// HEXLLM_KV_OFFLOAD_GBPS=<gbps> overrides read_gbps; write bandwidth scales by the same
// factor so the read/write asymmetry of the base spec is preserved.
FlashSpec FlashSpecFromEnv(FlashSpec spec = FlashSpec());

struct FlashStats {
  int64_t read_ops = 0;
  int64_t write_ops = 0;
  int64_t read_bytes = 0;
  int64_t write_bytes = 0;
  double read_seconds = 0.0;
  double write_seconds = 0.0;
  // Endurance proxy: never reset (see FlashTier::ResetStats).
  int64_t wear_write_ops = 0;
  int64_t wear_write_bytes = 0;
};

class FlashTier {
 public:
  explicit FlashTier(const FlashSpec& spec = FlashSpec()) : spec_(spec) {}

  // Timing-only cost of one read/write op of `bytes`.
  double CostRead(int64_t bytes) const {
    return static_cast<double>(bytes) / (spec_.read_gbps * 1e9) + spec_.read_latency_us * 1e-6;
  }
  double CostWrite(int64_t bytes) const {
    return static_cast<double>(bytes) / (spec_.write_gbps * 1e9) +
           spec_.write_latency_us * 1e-6;
  }

  // Charges one op and returns its duration in seconds.
  double ChargeRead(int64_t bytes) {
    const double s = CostRead(bytes);
    ++stats_.read_ops;
    stats_.read_bytes += bytes;
    stats_.read_seconds += s;
    return s;
  }
  double ChargeWrite(int64_t bytes) {
    const double s = CostWrite(bytes);
    ++stats_.write_ops;
    stats_.write_bytes += bytes;
    stats_.write_seconds += s;
    ++stats_.wear_write_ops;
    stats_.wear_write_bytes += bytes;
    return s;
  }

  const FlashSpec& spec() const { return spec_; }
  const FlashStats& stats() const { return stats_; }

  // Clears the per-run accounting but keeps the wear counters: endurance is a device
  // lifetime property, not a run property.
  void ResetStats() {
    const int64_t wear_ops = stats_.wear_write_ops;
    const int64_t wear_bytes = stats_.wear_write_bytes;
    stats_ = FlashStats();
    stats_.wear_write_ops = wear_ops;
    stats_.wear_write_bytes = wear_bytes;
  }

 private:
  FlashSpec spec_;
  FlashStats stats_;
};

}  // namespace hexsim

#endif  // SRC_HEXSIM_FLASH_H_

// HMX (Hexagon Matrix eXtension) emulation: the FP16 32x32 tile matmul unit (§3.1.2).
//
// Facts from the paper this model implements:
//   * the basic unit is a 32x32 FP16 tile occupying 2 KiB of TCM;
//   * tiles use a permuted layout (Figure 4a): every two rows are stored interleaved, i.e.
//     with the same layout as the transposed 2x32 sub-matrix;
//   * weight tiles for GEMM are arranged column-major at the tile level because the unit
//     performs a tile-level inner product (Figure 4b);
//   * the unit accumulates in an internal higher-precision accumulator (we use FP32) and can
//     scale / bias each output column when writing the accumulator out;
//   * all HMX operands must reside in TCM.
//
// Timing: one tile MAC op (32x32x32, 65536 flops) costs DeviceProfile::hmx_tile_cycles HMX
// cycles; with the V75 calibration (8 cycles @ 1.47 GHz) peak FP16 throughput is
// 12.04 TFLOPS, matching Table 2's 12032.54 GFLOPS.
#ifndef SRC_HEXSIM_HMX_H_
#define SRC_HEXSIM_HMX_H_

#include <cstdint>

#include "src/base/fp16.h"
#include "src/hexsim/cycle_ledger.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/tcm.h"

namespace hexsim {

class HmxEngine {
 public:
  static constexpr int kTileDim = 32;
  static constexpr int kTileElems = kTileDim * kTileDim;
  static constexpr int kTileBytes = kTileElems * 2;  // FP16

  explicit HmxEngine(const DeviceProfile& profile) : profile_(profile) {}

  // Halfword offset of logical element (r, c) inside a tile stored in the HMX layout of
  // Figure 4a: row pair p = r/2 holds the transposed 2x32 block, so consecutive memory
  // halfwords are (2p, c), (2p+1, c), (2p, c+1), ...
  static int TileHalfwordOffset(int r, int c) {
    return (r / 2) * (2 * kTileDim) + c * 2 + (r % 2);
  }

  // Packs a row-major 32x32 FP16 block (row stride in elements) into HMX tile layout.
  // Rows >= valid_rows are zero-filled without reading the source (partially occupied
  // activation strips pack only their live rows).
  static void PackTile(const hexllm::F16* rowmajor, int64_t row_stride, hexllm::F16* tile,
                       int valid_rows = kTileDim);
  // Inverse of PackTile; rows >= valid_rows of the destination are left untouched.
  static void UnpackTile(const hexllm::F16* tile, hexllm::F16* rowmajor, int64_t row_stride,
                         int valid_rows = kTileDim);

  // acc[32*32] (FP32, row-major) += A * B where A and B are HMX-layout tiles in TCM.
  // A is the activation tile (rows x k), B the weight tile (k x cols).
  void TileMacc(const Tcm& tcm, const hexllm::F16* a_tile, const hexllm::F16* b_tile,
                float* acc);

  // Writes the FP32 accumulator to an HMX-layout FP16 output tile, applying the per-column
  // (output-channel) scale and bias the hardware supports. scale/bias may be null. Rows >=
  // valid_rows are left untouched (callers that only consume the occupied rows skip the
  // padding conversion — pure host-time saving, the consumed rows are bit-identical).
  void StoreAcc(const float* acc, hexllm::F16* out_tile, const float* col_scale,
                const float* col_bias, int valid_rows = kTileDim);

  int64_t tile_ops() const { return tile_ops_; }
  void ResetTileOps() { tile_ops_ = 0; }
  // Adds `other`'s tile-op counter into this engine and zeroes it in `other`; used by
  // NpuDevice::MergeShards to fold per-lane shard accounting back into the parent.
  void AbsorbTileOps(HmxEngine& other) {
    tile_ops_ += other.tile_ops_;
    other.tile_ops_ = 0;
  }

  // Cycles consumed by `n` tile MAC ops.
  int64_t TileOpCycles(int64_t n) const { return n * profile_.hmx_tile_cycles; }
  double TileOpsToSeconds(int64_t n) const {
    return static_cast<double>(TileOpCycles(n)) / (profile_.hmx_freq_ghz * 1e9) /
           profile_.hmx_units;
  }

 private:
  const DeviceProfile& profile_;
  int64_t tile_ops_ = 0;
};

}  // namespace hexsim

#endif  // SRC_HEXSIM_HMX_H_

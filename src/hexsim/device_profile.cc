#include "src/hexsim/device_profile.h"

#include <algorithm>

#include "src/base/check.h"

namespace hexsim {

const char* NpuArchName(NpuArch arch) {
  switch (arch) {
    case NpuArch::kV73:
      return "V73";
    case NpuArch::kV75:
      return "V75";
    case NpuArch::kV79:
      return "V79";
  }
  return "?";
}

namespace {

DeviceProfile MakeAce3() {
  DeviceProfile p;
  p.device_name = "OnePlus Ace3";
  p.soc_name = "Snapdragon 8 Gen 2";
  p.arch = NpuArch::kV73;
  p.hvx_threads = 4;
  p.hvx_freq_ghz = 1.15;
  p.hmx_freq_ghz = 1.25;
  p.hmx_tile_cycles = 8;  // ~10.2 TFLOPS peak
  p.native_ieee_fp16 = false;
  p.vgather_packets = 40;
  p.dma_read_gbps = 48.0;
  p.dma_write_gbps = 32.0;
  p.hvx_core_read_gbps = 21.0;
  // V73 NPU sessions top out below 2 GiB of mappable memory (system regions consume part of
  // the nominal window); the paper's 3B models do not fit (§7.2.1, §7.2.2 "2GiB limitation
  // of the virtual address space on older NPUs").
  p.npu_vaddr_limit_bytes = 1900ll << 20;
  p.cpu_gflops_per_core = 32.0;
  p.cpu_mem_gbps = 24.0;
  p.gpu_gflops = 1500.0;
  p.gpu_mem_gbps = 42.0;
  return p;
}

DeviceProfile MakeOnePlus12() {
  DeviceProfile p;
  p.device_name = "OnePlus 12";
  p.soc_name = "Snapdragon 8 Gen 3";
  p.arch = NpuArch::kV75;
  p.hvx_threads = 4;
  p.hvx_freq_ghz = 1.3;
  p.hmx_freq_ghz = 1.47;
  p.hmx_tile_cycles = 8;  // 12.04 TFLOPS peak — matches Table 2's 12032.54 GFLOPS
  p.native_ieee_fp16 = false;
  p.vgather_packets = 32;  // paper: 24-48 packets on V75
  p.dma_read_gbps = 60.0;  // Table 2
  p.dma_write_gbps = 40.0;
  p.hvx_core_read_gbps = 26.0;  // Table 2 ("below 30 GB/s")
  p.npu_vaddr_limit_bytes = 3800ll << 20;
  return p;
}

DeviceProfile MakeAce5Pro() {
  DeviceProfile p;
  p.device_name = "OnePlus Ace5 Pro";
  p.soc_name = "Snapdragon 8 Elite";
  p.arch = NpuArch::kV79;
  p.hvx_threads = 6;
  p.hvx_freq_ghz = 1.45;
  p.hmx_freq_ghz = 1.7;
  p.hmx_tile_cycles = 8;  // ~13.9 TFLOPS peak
  p.native_ieee_fp16 = true;  // §5.2.2: qfloat conversions unnecessary from V79 on
  p.vgather_packets = 26;
  p.dma_read_gbps = 72.0;
  p.dma_write_gbps = 48.0;
  p.hvx_core_read_gbps = 31.0;
  p.npu_vaddr_limit_bytes = 3800ll << 20;
  p.cpu_gflops_per_core = 48.0;
  p.cpu_mem_gbps = 34.0;
  p.gpu_gflops = 2300.0;
  p.gpu_mem_gbps = 58.0;
  return p;
}

}  // namespace

const DeviceProfile& OnePlusAce3() {
  static const DeviceProfile p = MakeAce3();
  return p;
}

const DeviceProfile& OnePlus12() {
  static const DeviceProfile p = MakeOnePlus12();
  return p;
}

const DeviceProfile& OnePlusAce5Pro() {
  static const DeviceProfile p = MakeAce5Pro();
  return p;
}

std::vector<const DeviceProfile*> AllDevices() {
  return {&OnePlusAce3(), &OnePlus12(), &OnePlusAce5Pro()};
}

const DeviceProfile& DeviceByArch(NpuArch arch) {
  switch (arch) {
    case NpuArch::kV73:
      return OnePlusAce3();
    case NpuArch::kV75:
      return OnePlus12();
    case NpuArch::kV79:
      return OnePlusAce5Pro();
  }
  HEXLLM_CHECK_MSG(false, "unknown NpuArch");
}

DeviceProfile LittleVariant(const DeviceProfile& base) {
  DeviceProfile p = base;
  p.device_name = base.device_name + " (little)";
  // Efficiency bin: ~2/3 clocks, fewer HVX contexts and big cores, DRAM path intact.
  p.hvx_freq_ghz = base.hvx_freq_ghz * 0.65;
  p.hmx_freq_ghz = base.hmx_freq_ghz * 0.65;
  p.hvx_threads = std::max(2, base.hvx_threads - 2);
  p.cpu_big_cores = std::max(2, base.cpu_big_cores / 2);
  p.cpu_gflops_per_core = base.cpu_gflops_per_core * 0.7;
  // Lower clocks at lower voltage: the dynamic-power terms shrink superlinearly.
  p.p_base_w = base.p_base_w * 0.8;
  p.p_hmx_w = base.p_hmx_w * 0.55;
  p.p_hvx_thread_w = base.p_hvx_thread_w * 0.55;
  p.p_cpu_core_w = base.p_cpu_core_w * 0.6;
  return p;
}

}  // namespace hexsim

// Time/energy accounting for the simulated SoC.
//
// Every engine (HVX, HMX, DMA, CPU, GPU) accumulates *busy seconds*; kernels additionally tag
// contributions (e.g. "attn.softmax") so benches can print breakdowns like the paper's
// Figure 8. Busy seconds feed the power model: energy = sum(engine busy x engine power) +
// base power x wall-clock.
//
// Beyond time, the ledger carries the simulator's generic event counters (AddCount):
// hardware units and kernels record DMA descriptors, rpcmem coherence ops, per-op
// invocations, etc. under `unit.metric_name` keys, and ExportTo publishes the whole ledger
// into an obs::Registry with the `hexsim.` prefix for the observability layer
// (DESIGN.md §3.3, docs/metrics_schema.md).
#ifndef SRC_HEXSIM_CYCLE_LEDGER_H_
#define SRC_HEXSIM_CYCLE_LEDGER_H_

#include <array>
#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/base/check.h"
#include "src/obs/metrics.h"

namespace hexsim {

enum class Engine : uint8_t {
  kHvx,
  kHmx,
  kDma,
  kCpu,
  kGpu,
  kCount,
};

const char* EngineName(Engine e);

class CycleLedger {
 public:
  void AddSeconds(Engine e, double seconds, std::string_view tag = {}) {
    HEXLLM_DCHECK(seconds >= 0.0);
    busy_[static_cast<size_t>(e)] += seconds;
    if (!tag.empty()) {
      // Heterogeneous lookup: steady-state charging (the tag already exists) must not
      // construct a temporary std::string — zero-alloc decode contract
      // (docs/performance.md).
      auto it = tags_.find(tag);
      if (it != tags_.end()) {
        it->second += seconds;
      } else {
        tags_.emplace(std::string(tag), seconds);
      }
    }
  }

  // Advances the simulated wall clock (latency-critical path), independent of engine busy
  // time: overlapped engine work advances the wall clock only once.
  void AdvanceWall(double seconds) {
    HEXLLM_DCHECK(seconds >= 0.0);
    wall_seconds_ += seconds;
  }

  double EngineSeconds(Engine e) const { return busy_[static_cast<size_t>(e)]; }

  double TagSeconds(std::string_view tag) const {
    auto it = tags_.find(tag);
    return it == tags_.end() ? 0.0 : it->second;
  }

  double wall_seconds() const { return wall_seconds_; }

  const std::map<std::string, double, std::less<>>& tags() const { return tags_; }

  // Total bytes moved over DDR by the DMA engine (power model input).
  void AddDmaBytes(int64_t bytes) { dma_bytes_ += bytes; }
  int64_t dma_bytes() const { return dma_bytes_; }

  // Generic monotonic event counter, keyed `unit.metric_name` (e.g. "dma.descriptors",
  // "kernel.flash_attention.calls"). Units and kernels record through this so one snapshot
  // of the ledger carries the full activity profile of a simulated run.
  void AddCount(std::string_view name, int64_t n = 1) {
    HEXLLM_DCHECK(n >= 0);
    // Heterogeneous lookup, same reason as AddSeconds: long keys (e.g.
    // "kernel.dequant_coalesced_lut.calls") exceed the SSO buffer, so a std::string
    // temporary would heap-allocate on every hot-path count.
    auto it = counts_.find(name);
    if (it != counts_.end()) {
      it->second += n;
    } else {
      counts_.emplace(std::string(name), n);
    }
  }

  int64_t Count(std::string_view name) const {
    auto it = counts_.find(name);
    return it == counts_.end() ? 0 : it->second;
  }

  const std::map<std::string, int64_t, std::less<>>& counts() const { return counts_; }

  // Publishes the ledger into `registry`:
  //   gauges   hexsim.<engine>.busy_seconds, hexsim.wall_seconds
  //   counters hexsim.dma.ddr_bytes, plus every counts() key — simulator-unit counts
  //            (dma.*) under the hexsim prefix, kernel invocation counts (kernel.*)
  //            verbatim since kernels are their own unit (docs/metrics_schema.md)
  //   series   hexsim.tag_seconds{<tag>}
  void ExportTo(obs::Registry& registry) const {
    for (size_t i = 0; i < busy_.size(); ++i) {
      std::string name = EngineName(static_cast<Engine>(i));
      for (auto& c : name) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      registry.Set("hexsim." + name + ".busy_seconds", busy_[i]);
    }
    registry.Set("hexsim.wall_seconds", wall_seconds_);
    registry.Count("hexsim.dma.ddr_bytes", dma_bytes_);
    for (const auto& [tag, seconds] : tags_) {
      registry.Set("hexsim.tag_seconds", seconds, tag);
    }
    for (const auto& [name, n] : counts_) {
      if (name.rfind("kernel.", 0) == 0) {
        registry.Count(name, n);
      } else {
        registry.Count("hexsim." + name, n);
      }
    }
  }

  void Clear() {
    for (auto& b : busy_) {
      b = 0.0;
    }
    tags_.clear();
    counts_.clear();
    wall_seconds_ = 0.0;
    dma_bytes_ = 0;
  }

  void MergeFrom(const CycleLedger& other) {
    for (size_t i = 0; i < busy_.size(); ++i) {
      busy_[i] += other.busy_[i];
    }
    for (const auto& [k, v] : other.tags_) {
      tags_[k] += v;
    }
    for (const auto& [k, v] : other.counts_) {
      counts_[k] += v;
    }
    wall_seconds_ += other.wall_seconds_;
    dma_bytes_ += other.dma_bytes_;
  }

 private:
  std::array<double, static_cast<size_t>(Engine::kCount)> busy_{};
  // std::less<> enables find(string_view) without materializing a key string.
  std::map<std::string, double, std::less<>> tags_;
  std::map<std::string, int64_t, std::less<>> counts_;
  double wall_seconds_ = 0.0;
  int64_t dma_bytes_ = 0;
};

inline const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kHvx:
      return "HVX";
    case Engine::kHmx:
      return "HMX";
    case Engine::kDma:
      return "DMA";
    case Engine::kCpu:
      return "CPU";
    case Engine::kGpu:
      return "GPU";
    case Engine::kCount:
      break;
  }
  return "?";
}

}  // namespace hexsim

#endif  // SRC_HEXSIM_CYCLE_LEDGER_H_

#include "src/hexsim/thermal.h"

#include <algorithm>

#include "src/base/check.h"

namespace hexsim {

void ThermalState::AddBusy(double seconds) {
  HEXLLM_CHECK(seconds >= 0.0);
  temp_c_ += p_.heat_c_per_busy_s * seconds;
  min_scale_ = std::min(min_scale_, clock_scale());
}

void ThermalState::AddIdle(double seconds) {
  HEXLLM_CHECK(seconds >= 0.0);
  temp_c_ = std::max(p_.ambient_c, temp_c_ - p_.cool_c_per_idle_s * seconds);
}

double ThermalState::clock_scale() const {
  if (temp_c_ <= p_.throttle_start_c) {
    return 1.0;
  }
  if (temp_c_ >= p_.throttle_full_c) {
    return p_.min_clock_scale;
  }
  const double frac =
      (temp_c_ - p_.throttle_start_c) / (p_.throttle_full_c - p_.throttle_start_c);
  return 1.0 - frac * (1.0 - p_.min_clock_scale);
}

}  // namespace hexsim

// rpcmem / FastRPC simulation (§6).
//
// The real system shares physical memory between CPU and NPU through rpcmem (a dmabuf
// wrapper from libcdsprpc.so). Two properties matter and are modeled here:
//
//   1. Coherence is ONE-WAY on Snapdragon: after the CPU writes a shared buffer, the NPU
//      does not see the data until the CPU flushes and the NPU side invalidates its cache.
//      SharedBuffer tracks a dirty bit; NpuView() aborts if maintenance was skipped — the
//      exact bug class the paper calls out ("we manually clear the cache before NPU polls").
//   2. A single NPU session maps buffers into a 32-bit virtual address space; on V73 parts
//      the usable window is ~2 GiB, which is why 3B-parameter models cannot run on
//      Snapdragon 8 Gen 2 (§7.2.1). NpuSession::MapBuffer enforces the per-profile limit.
//
// The pool also tracks total dmabuf bytes, which is what Figure 16 reports via pmap.
#ifndef SRC_HEXSIM_RPCMEM_H_
#define SRC_HEXSIM_RPCMEM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/tensor.h"
#include "src/hexsim/device_profile.h"
#include "src/obs/metrics.h"

namespace hexsim {

// Thread-safe: the dirty bit and flush counter are atomics, so buffers may be viewed and
// flushed from parallel lanes (docs/threading_model.md). The storage bytes themselves are
// NOT synchronized — disjoint-range writes are the caller's contract, as on real dmabufs.
class SharedBuffer {
 public:
  SharedBuffer(int id, int64_t bytes, std::string name)
      : id_(id), name_(std::move(name)), storage_(static_cast<size_t>(bytes)) {}

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  int64_t size() const { return static_cast<int64_t>(storage_.size()); }

  // CPU-side view; marks the buffer CPU-dirty (writes may sit in the CPU cache).
  uint8_t* CpuView() {
    cpu_dirty_.store(true, std::memory_order_release);
    return storage_.data();
  }
  const uint8_t* CpuReadView() const { return storage_.data(); }

  // CPU cache flush + NPU-side invalidate, the maintenance pair required before the NPU
  // reads CPU-written data.
  void FlushForNpu() {
    cpu_dirty_.store(false, std::memory_order_release);
    flush_ops_.fetch_add(1, std::memory_order_relaxed);
  }

  // Coherence maintenance pairs performed on this buffer (observability: the one-way
  // coherence traffic Figure 16's CPU cost partially consists of).
  int64_t flush_ops() const { return flush_ops_.load(std::memory_order_relaxed); }

  // NPU-side view. Aborts if the CPU wrote the buffer and nobody flushed — on the phone this
  // is a silent stale-data bug; in the simulator it is a hard failure so tests catch it.
  uint8_t* NpuView() {
    HEXLLM_CHECK_MSG(!cpu_dirty_.load(std::memory_order_acquire),
                     "NPU read of CPU-dirty shared buffer without cache maintenance");
    return storage_.data();
  }

  // NPU writes are visible to the CPU without maintenance (the coherent direction).
  uint8_t* NpuWriteView() { return storage_.data(); }

  bool cpu_dirty() const { return cpu_dirty_.load(std::memory_order_acquire); }

 private:
  int id_;
  std::string name_;
  std::atomic<bool> cpu_dirty_{false};
  std::atomic<int64_t> flush_ops_{0};
  std::vector<uint8_t> storage_;
};

// Thread-safe: a single mutex guards the live list and accounting, so Alloc/Free/ExportTo
// may race from parallel lanes.
class RpcmemPool {
 public:
  // Allocates a shared (dmabuf-backed) buffer. Name is for accounting/debugging.
  std::shared_ptr<SharedBuffer> Alloc(int64_t bytes, std::string name);

  // Total dmabuf bytes currently allocated (Figure 16's "memory used by NPU").
  int64_t total_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
  }

  void Free(const std::shared_ptr<SharedBuffer>& buf);

  // Publishes pool accounting + per-buffer coherence traffic:
  //   counters rpcmem.allocs, rpcmem.frees, rpcmem.coherence_flushes (live buffers)
  //   gauges   rpcmem.dmabuf_bytes, rpcmem.live_buffers
  void ExportTo(obs::Registry& registry) const;

 private:
  mutable std::mutex mu_;
  int next_id_ = 1;
  int64_t total_bytes_ = 0;
  int64_t alloc_count_ = 0;
  int64_t free_count_ = 0;
  std::vector<std::shared_ptr<SharedBuffer>> live_;
};

// Operation request passed through the shared-memory mailbox.
struct OpRequest {
  std::string op_name;
  std::vector<int> buffer_ids;
  std::vector<int64_t> params;
};

// A remote NPU session: buffer mapping under the 32-bit address-space budget plus a polling
// shared-memory command channel.
class NpuSession {
 public:
  explicit NpuSession(const DeviceProfile& profile) : profile_(profile) {}

  // Maps a shared buffer into the session's NPU address space. Returns false if the mapping
  // would exceed the profile's virtual-address budget (the V73 2 GiB wall).
  bool MapBuffer(const std::shared_ptr<SharedBuffer>& buf);

  void UnmapBuffer(const std::shared_ptr<SharedBuffer>& buf);

  int64_t mapped_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return mapped_bytes_;
  }

  // Installs the NPU-side op executor (the "thread that continuously polls").
  void SetHandler(std::function<void(const OpRequest&)> handler) {
    handler_ = std::move(handler);
  }

  // CPU side: writes a request into the mailbox and performs the required cache maintenance.
  // Returns the communication latency in seconds (shared-memory polling path, much cheaper
  // than a default FastRPC invocation).
  double Submit(const OpRequest& req);

  int64_t submitted_ops() const { return submitted_ops_.load(std::memory_order_relaxed); }

  // Cache maintenance operations performed on the mailbox path (one CPU flush + one NPU
  // invalidate per submitted op, the §6 one-way coherence discipline).
  int64_t coherence_ops() const { return coherence_ops_.load(std::memory_order_relaxed); }

  // Publishes session accounting:
  //   counters session.submitted_ops, session.coherence_ops
  //   gauges   session.mapped_bytes, session.vaddr_limit_bytes
  void ExportTo(obs::Registry& registry) const;

  // Simulated one-way communication latency of the polling mailbox.
  static constexpr double kMailboxLatencySeconds = 12e-6;

 private:
  const DeviceProfile& profile_;
  std::function<void(const OpRequest&)> handler_;
  mutable std::mutex mu_;  // guards mapped_bytes_ / mapped_ids_
  int64_t mapped_bytes_ = 0;
  std::atomic<int64_t> submitted_ops_{0};
  std::atomic<int64_t> coherence_ops_{0};
  std::vector<int> mapped_ids_;
};

}  // namespace hexsim

#endif  // SRC_HEXSIM_RPCMEM_H_

#include "src/hexsim/flash.h"

#include <cstdlib>

namespace hexsim {

FlashSpec FlashSpecFromEnv(FlashSpec spec) {
  const char* v = std::getenv("HEXLLM_KV_OFFLOAD_GBPS");
  if (v != nullptr && v[0] != '\0') {
    char* end = nullptr;
    const double gbps = std::strtod(v, &end);
    if (end != v && gbps > 0.0) {
      const double ratio = spec.write_gbps / spec.read_gbps;
      spec.read_gbps = gbps;
      spec.write_gbps = gbps * ratio;
    }
  }
  return spec;
}

}  // namespace hexsim

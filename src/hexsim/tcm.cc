#include "src/hexsim/tcm.h"

#include <algorithm>

#include "src/base/math_util.h"

namespace hexsim {

Tcm::Tcm(int64_t capacity_bytes)
    : capacity_(capacity_bytes), storage_(static_cast<size_t>(capacity_bytes)) {
  HEXLLM_CHECK(capacity_bytes > 0);
}

uint8_t* Tcm::Alloc(int64_t bytes, int64_t alignment) {
  HEXLLM_CHECK(bytes >= 0);
  const int64_t aligned_top = hexllm::AlignUp(top_, alignment);
  HEXLLM_CHECK_MSG(aligned_top + bytes <= capacity_,
                   "TCM exhausted: kernel tiling exceeds on-chip memory budget");
  uint8_t* p = storage_.data() + aligned_top;
  top_ = aligned_top + bytes;
  high_watermark_ = std::max(high_watermark_, top_);
  return p;
}

void Tcm::PushFrame() { frames_.push_back(top_); }

void Tcm::PopFrame() {
  HEXLLM_CHECK(!frames_.empty());
  top_ = frames_.back();
  frames_.pop_back();
}

void Tcm::Reset() {
  top_ = 0;
  frames_.clear();
}

}  // namespace hexsim

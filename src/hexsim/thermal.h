/// \file
/// A first-order thermal model for sustained-load throttling (docs/fleet.md).
///
/// Phones have no fans: sustained NPU utilization accumulates heat and the SoC sheds clocks
/// to stay inside its skin-temperature envelope, then recovers while idle. The fleet layer
/// (src/fleet) wraps each simulated device's execution backend in this model so long-running
/// serving simulations see the paper's §7.2.3 power envelope as a CLOCK effect: busy seconds
/// raise a temperature state, idle seconds cool it toward ambient, and the instantaneous
/// clock scale degrades linearly between a throttle-start and a throttle-full temperature.
///
/// The model is deliberately simple (one lumped thermal mass, linear slopes) and fully
/// deterministic: temperature is a pure function of the accumulated busy/idle history, so
/// fleet runs stay bit-identical across reruns and thread counts.
#ifndef SRC_HEXSIM_THERMAL_H_
#define SRC_HEXSIM_THERMAL_H_

namespace hexsim {

struct ThermalParams {
  double ambient_c = 25.0;          // resting (and minimum) temperature
  double heat_c_per_busy_s = 8.0;   // heating slope while the NPU is busy
  double cool_c_per_idle_s = 3.0;   // cooling slope while idle (toward ambient)
  double throttle_start_c = 40.0;   // clocks start dropping above this
  double throttle_full_c = 70.0;    // clocks bottom out at min_clock_scale here
  double min_clock_scale = 0.5;     // clock floor as a fraction of the nominal clock
};

// Accumulates busy/idle time into a temperature and exposes the implied clock scale.
class ThermalState {
 public:
  ThermalState() = default;
  explicit ThermalState(const ThermalParams& params) : p_(params), temp_c_(params.ambient_c) {}

  // `seconds` of sustained NPU activity (wall-clock, i.e. already throttle-dilated).
  void AddBusy(double seconds);
  // `seconds` with the NPU idle; cools toward (never below) ambient.
  void AddIdle(double seconds);

  double temperature_c() const { return temp_c_; }

  // 1.0 at or below throttle_start_c, falling linearly to min_clock_scale at
  // throttle_full_c and clamped there beyond it. Monotone non-increasing in temperature.
  double clock_scale() const;

  // Lowest clock scale reached over the state's lifetime (fleet reporting).
  double min_scale_reached() const { return min_scale_; }

  const ThermalParams& params() const { return p_; }

 private:
  ThermalParams p_;
  double temp_c_ = 25.0;
  double min_scale_ = 1.0;
};

}  // namespace hexsim

#endif  // SRC_HEXSIM_THERMAL_H_

#include "src/hexsim/hmx.h"

#include "src/base/check.h"

namespace hexsim {

using hexllm::F16;

void HmxEngine::PackTile(const F16* rowmajor, int64_t row_stride, F16* tile) {
  for (int r = 0; r < kTileDim; ++r) {
    for (int c = 0; c < kTileDim; ++c) {
      tile[TileHalfwordOffset(r, c)] = rowmajor[r * row_stride + c];
    }
  }
}

void HmxEngine::UnpackTile(const F16* tile, F16* rowmajor, int64_t row_stride) {
  for (int r = 0; r < kTileDim; ++r) {
    for (int c = 0; c < kTileDim; ++c) {
      rowmajor[r * row_stride + c] = tile[TileHalfwordOffset(r, c)];
    }
  }
}

void HmxEngine::TileMacc(const Tcm& tcm, const F16* a_tile, const F16* b_tile, float* acc) {
  HEXLLM_CHECK_MSG(tcm.Contains(a_tile), "HMX activation tile must reside in TCM");
  HEXLLM_CHECK_MSG(tcm.Contains(b_tile), "HMX weight tile must reside in TCM");
  ++tile_ops_;

  // Decode both tiles into scratch row-major form once (the hardware streams the permuted
  // layout natively; the decode is a simulation artifact, not a timed operation).
  float a[kTileElems];
  float b[kTileElems];
  for (int r = 0; r < kTileDim; ++r) {
    for (int c = 0; c < kTileDim; ++c) {
      a[r * kTileDim + c] = a_tile[TileHalfwordOffset(r, c)].ToFloat();
      b[r * kTileDim + c] = b_tile[TileHalfwordOffset(r, c)].ToFloat();
    }
  }
  // FP16 products accumulated in FP32 (the unit's internal higher-precision accumulator).
  for (int r = 0; r < kTileDim; ++r) {
    for (int k = 0; k < kTileDim; ++k) {
      const float av = a[r * kTileDim + k];
      if (av == 0.0f) {
        continue;  // simulation fast path; bit-identical result
      }
      float* acc_row = acc + r * kTileDim;
      const float* b_row = b + k * kTileDim;
      for (int c = 0; c < kTileDim; ++c) {
        acc_row[c] += av * b_row[c];
      }
    }
  }
}

void HmxEngine::StoreAcc(const float* acc, F16* out_tile, const float* col_scale,
                         const float* col_bias) {
  for (int r = 0; r < kTileDim; ++r) {
    for (int c = 0; c < kTileDim; ++c) {
      float v = acc[r * kTileDim + c];
      if (col_scale != nullptr) {
        v *= col_scale[c];
      }
      if (col_bias != nullptr) {
        v += col_bias[c];
      }
      out_tile[TileHalfwordOffset(r, c)] = F16(v);
    }
  }
}

}  // namespace hexsim

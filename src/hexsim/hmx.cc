#include "src/hexsim/hmx.h"

#include <cstring>

#include "src/base/check.h"

namespace hexsim {

using hexllm::F16;

void HmxEngine::PackTile(const F16* rowmajor, int64_t row_stride, F16* tile, int valid_rows) {
  if (valid_rows < kTileDim) {
    std::memset(static_cast<void*>(tile), 0, kTileBytes);  // F16 zero is all-zero bits
  }
  for (int r = 0; r < valid_rows; ++r) {
    for (int c = 0; c < kTileDim; ++c) {
      tile[TileHalfwordOffset(r, c)] = rowmajor[r * row_stride + c];
    }
  }
}

void HmxEngine::UnpackTile(const F16* tile, F16* rowmajor, int64_t row_stride,
                           int valid_rows) {
  for (int r = 0; r < valid_rows; ++r) {
    for (int c = 0; c < kTileDim; ++c) {
      rowmajor[r * row_stride + c] = tile[TileHalfwordOffset(r, c)];
    }
  }
}

void HmxEngine::TileMacc(const Tcm& tcm, const F16* a_tile, const F16* b_tile, float* acc) {
  HEXLLM_CHECK_MSG(tcm.Contains(a_tile), "HMX activation tile must reside in TCM");
  HEXLLM_CHECK_MSG(tcm.Contains(b_tile), "HMX weight tile must reside in TCM");
  ++tile_ops_;

  // Decode the weight tile into scratch row-major form once (the hardware streams the
  // permuted layout natively; the decode is a simulation artifact, not a timed operation).
  float b[kTileElems];
  for (int p = 0; p < kTileDim / 2; ++p) {
    const F16* pair = b_tile + p * 2 * kTileDim;
    float* even = b + (2 * p) * kTileDim;
    float* odd = even + kTileDim;
    for (int c = 0; c < kTileDim; ++c) {
      even[c] = pair[2 * c].ToFloat();
      odd[c] = pair[2 * c + 1].ToFloat();
    }
  }
  // FP16 products accumulated in FP32 (the unit's internal higher-precision accumulator).
  // Activation elements decode lazily: a zero magnitude (bits 0x0000/0x8000, i.e. exactly
  // the av == 0.0f values) contributes nothing, so padded rows skip both the table lookup
  // and the MAC sweep — bit-identical result, and the simulation cost scales with the
  // tile's occupied rows instead of the full 32.
  for (int r = 0; r < kTileDim; ++r) {
    const F16* a_row = a_tile + (r / 2) * 2 * kTileDim + (r % 2);
    float* acc_row = acc + r * kTileDim;
    for (int k = 0; k < kTileDim; ++k) {
      const uint16_t bits = a_row[2 * k].bits();
      if ((bits & 0x7FFFu) == 0) {
        continue;
      }
      const float av = hexllm::F16BitsToF32(bits);
      const float* b_row = b + k * kTileDim;
      for (int c = 0; c < kTileDim; ++c) {
        acc_row[c] += av * b_row[c];
      }
    }
  }
}

void HmxEngine::StoreAcc(const float* acc, F16* out_tile, const float* col_scale,
                         const float* col_bias, int valid_rows) {
  for (int r = 0; r < valid_rows; ++r) {
    for (int c = 0; c < kTileDim; ++c) {
      float v = acc[r * kTileDim + c];
      if (col_scale != nullptr) {
        v *= col_scale[c];
      }
      if (col_bias != nullptr) {
        v += col_bias[c];
      }
      out_tile[TileHalfwordOffset(r, c)] = F16(v);
    }
  }
}

}  // namespace hexsim

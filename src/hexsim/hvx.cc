#include "src/hexsim/hvx.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/base/math_util.h"

namespace hexsim {

using hexllm::F16BitsToF32;
using hexllm::F32ToF16Bits;

namespace {

template <typename F>
HvxVec LanewiseHf(const HvxVec& a, const HvxVec& b, F op) {
  HvxVec out;
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    const float r = op(F16BitsToF32(a.GetU16(i)), F16BitsToF32(b.GetU16(i)));
    out.SetU16(i, F32ToF16Bits(r));
  }
  return out;
}

template <typename F>
HvxVec LanewiseSf(const HvxVec& a, const HvxVec& b, F op) {
  HvxVec out;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    out.SetF32(i, op(a.GetF32(i), b.GetF32(i)));
  }
  return out;
}

}  // namespace

HvxVec HvxContext::VSplatB(uint8_t x) {
  Charge(1);
  HvxVec v;
  v.b.fill(x);
  return v;
}

HvxVec HvxContext::VSplatH(uint16_t x) {
  Charge(1);
  HvxVec v;
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    v.SetU16(i, x);
  }
  return v;
}

HvxVec HvxContext::VSplatW(uint32_t x) {
  Charge(1);
  HvxVec v;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    v.SetU32(i, x);
  }
  return v;
}

HvxVec HvxContext::VSplatSf(float x) {
  Charge(1);
  HvxVec v;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    v.SetF32(i, x);
  }
  return v;
}

HvxVec HvxContext::VAddHf(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  return LanewiseHf(a, b, [](float x, float y) { return x + y; });
}
HvxVec HvxContext::VSubHf(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  return LanewiseHf(a, b, [](float x, float y) { return x - y; });
}
HvxVec HvxContext::VMpyHf(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  return LanewiseHf(a, b, [](float x, float y) { return x * y; });
}
HvxVec HvxContext::VMaxHf(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  return LanewiseHf(a, b, [](float x, float y) { return std::max(x, y); });
}
HvxVec HvxContext::VMinHf(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  return LanewiseHf(a, b, [](float x, float y) { return std::min(x, y); });
}

HvxVec HvxContext::VAddSf(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  return LanewiseSf(a, b, [](float x, float y) { return x + y; });
}
HvxVec HvxContext::VSubSf(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  return LanewiseSf(a, b, [](float x, float y) { return x - y; });
}
HvxVec HvxContext::VMpySf(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  return LanewiseSf(a, b, [](float x, float y) { return x * y; });
}
HvxVec HvxContext::VMaxSf(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  return LanewiseSf(a, b, [](float x, float y) { return std::max(x, y); });
}

HvxVecPair HvxContext::WidenHfToSf(const HvxVec& a) {
  Charge(2);
  HvxVecPair p;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    p.lo.SetF32(i, F16BitsToF32(a.GetU16(i)));
    p.hi.SetF32(i, F16BitsToF32(a.GetU16(i + HvxVec::kWords)));
  }
  return p;
}

HvxVec HvxContext::NarrowSfToHf(const HvxVecPair& p) {
  Charge(2);
  HvxVec out;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    out.SetU16(i, F32ToF16Bits(p.lo.GetF32(i)));
    out.SetU16(i + HvxVec::kWords, F32ToF16Bits(p.hi.GetF32(i)));
  }
  return out;
}

HvxVec HvxContext::VCvtHToHf(const HvxVec& a) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    out.SetU16(i, F32ToF16Bits(static_cast<float>(static_cast<int16_t>(a.GetU16(i)))));
  }
  return out;
}

HvxVec HvxContext::VCvtHfToH(const HvxVec& a) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    const float f = F16BitsToF32(a.GetU16(i));
    const int32_t v =
        static_cast<int32_t>(std::lrintf(hexllm::Clamp(f, -32768.0f, 32767.0f)));
    out.SetU16(i, static_cast<uint16_t>(static_cast<int16_t>(v)));
  }
  return out;
}

HvxVec HvxContext::VCvtSfToW(const HvxVec& a) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    out.SetU32(i, static_cast<uint32_t>(static_cast<int32_t>(a.GetF32(i))));
  }
  return out;
}

HvxVec HvxContext::VCvtWToSf(const HvxVec& a) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    out.SetF32(i, static_cast<float>(static_cast<int32_t>(a.GetU32(i))));
  }
  return out;
}

HvxVec HvxContext::VAnd(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kBytes; ++i) {
    out.b[i] = a.b[i] & b.b[i];
  }
  return out;
}
HvxVec HvxContext::VOr(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kBytes; ++i) {
    out.b[i] = a.b[i] | b.b[i];
  }
  return out;
}
HvxVec HvxContext::VXor(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kBytes; ++i) {
    out.b[i] = a.b[i] ^ b.b[i];
  }
  return out;
}

HvxVec HvxContext::VShlH(const HvxVec& a, int sh) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    out.SetU16(i, static_cast<uint16_t>(a.GetU16(i) << sh));
  }
  return out;
}
HvxVec HvxContext::VShrH(const HvxVec& a, int sh) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    out.SetU16(i, static_cast<uint16_t>(a.GetU16(i) >> sh));
  }
  return out;
}
HvxVec HvxContext::VAShrH(const HvxVec& a, int sh) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    out.SetU16(i, static_cast<uint16_t>(static_cast<int16_t>(a.GetU16(i)) >> sh));
  }
  return out;
}
HvxVec HvxContext::VShlW(const HvxVec& a, int sh) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    out.SetU32(i, a.GetU32(i) << sh);
  }
  return out;
}
HvxVec HvxContext::VShrW(const HvxVec& a, int sh) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    out.SetU32(i, a.GetU32(i) >> sh);
  }
  return out;
}
HvxVec HvxContext::VAddH(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    out.SetU16(i, static_cast<uint16_t>(a.GetU16(i) + b.GetU16(i)));
  }
  return out;
}
HvxVec HvxContext::VSubH(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    out.SetU16(i, static_cast<uint16_t>(a.GetU16(i) - b.GetU16(i)));
  }
  return out;
}
HvxVec HvxContext::VAddW(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    out.SetU32(i, a.GetU32(i) + b.GetU32(i));
  }
  return out;
}
HvxVec HvxContext::VSubW(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    out.SetU32(i, a.GetU32(i) - b.GetU32(i));
  }
  return out;
}
HvxVec HvxContext::VSubB(const HvxVec& a, const HvxVec& b) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kBytes; ++i) {
    out.b[i] = static_cast<uint8_t>(a.b[i] - b.b[i]);
  }
  return out;
}

HvxVec HvxContext::VPermuteBytes(const HvxVec& a, const std::array<uint8_t, 128>& idx) {
  Charge(1);
  HvxVec out;
  for (int i = 0; i < HvxVec::kBytes; ++i) {
    out.b[i] = a.b[idx[static_cast<size_t>(i)]];
  }
  return out;
}

HvxVecPair HvxContext::VShuffH(const HvxVec& a, const HvxVec& b) {
  Charge(2);
  HvxVecPair p;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    p.lo.SetU16(2 * i, a.GetU16(i));
    p.lo.SetU16(2 * i + 1, b.GetU16(i));
    p.hi.SetU16(2 * i, a.GetU16(i + HvxVec::kWords));
    p.hi.SetU16(2 * i + 1, b.GetU16(i + HvxVec::kWords));
  }
  return p;
}

HvxVecPair HvxContext::VLut16(const HvxVec& idx, const HvxVec& table) {
  Charge(1);
  ++vlut16_ops_;
  HvxVecPair p;
  for (int i = 0; i < HvxVec::kBytes; ++i) {
    const uint16_t v = table.GetU16(idx.b[static_cast<size_t>(i)] & 0x0F);
    if (i < HvxVec::kHalfwords) {
      p.lo.SetU16(i, v);
    } else {
      p.hi.SetU16(i - HvxVec::kHalfwords, v);
    }
  }
  return p;
}

HvxVec HvxContext::VGather(Tcm& tcm, int64_t base_offset, const HvxVec& offsets) {
  Charge(profile_.vgather_packets);
  ++vgather_ops_;
  HEXLLM_CHECK(base_offset >= 0 && base_offset < tcm.capacity());
  HvxVec out;
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    const uint16_t off = offsets.GetU16(i);  // 16-bit byte offset: 64 KiB window by design
    const int64_t addr = base_offset + off;
    HEXLLM_CHECK_MSG(addr + 2 <= tcm.capacity(), "vgather out of TCM bounds");
    uint16_t v;
    std::memcpy(&v, tcm.base() + addr, 2);
    out.SetU16(i, v);
  }
  return out;
}

void HvxContext::VScatterH(Tcm& tcm, int64_t base_offset, const HvxVec& offsets,
                           const HvxVec& values) {
  Charge(profile_.vgather_packets + 8);
  ++vscatter_ops_;
  HEXLLM_CHECK(base_offset >= 0 && base_offset < tcm.capacity());
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    const uint16_t off = offsets.GetU16(i);
    const int64_t addr = base_offset + off;
    HEXLLM_CHECK_MSG(addr + 2 <= tcm.capacity(), "vscatter out of TCM bounds");
    const uint16_t v = values.GetU16(i);
    std::memcpy(tcm.base() + addr, &v, 2);
  }
}

float HvxContext::ReduceMaxHf(const HvxVec& a) {
  // log2(64) = 6 rotate+max steps, plus one extract.
  Charge(7);
  float m = -std::numeric_limits<float>::infinity();
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    m = std::max(m, F16BitsToF32(a.GetU16(i)));
  }
  return m;
}

float HvxContext::ReduceSumSf(const HvxVec& a) {
  // log2(32) = 5 rotate+add steps, plus one extract.
  Charge(6);
  float s = 0.0f;
  for (int i = 0; i < HvxVec::kWords; ++i) {
    s += a.GetF32(i);
  }
  return s;
}

float HvxContext::ReduceSumHfAsSf(const HvxVec& a) {
  // widen (2) + two 32-lane reductions merged: ~2 + 6 packets.
  Charge(8);
  float s = 0.0f;
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    s += F16BitsToF32(a.GetU16(i));
  }
  return s;
}

}  // namespace hexsim

// DMA engine model: asynchronous 1D/2D transfers between DDR and TCM/L2 (§3.1.2).
//
// The paper's key observations about this engine:
//   * large regular 1D/2D blocks reach ~60 GB/s read from DDR (Table 2);
//   * small or irregular transfers are inefficient (per-descriptor overhead dominates);
//   * transfers are asynchronous, so well-written kernels overlap DMA with HVX/HMX compute.
//
// The model charges `bytes / bandwidth + descriptor_overhead` per descriptor and, for 2D
// descriptors with short rows, degrades effective bandwidth (DDR burst under-utilization).
// Functionally, transfers are memcpy on host memory.
#ifndef SRC_HEXSIM_DMA_H_
#define SRC_HEXSIM_DMA_H_

#include <cstdint>

#include "src/hexsim/cycle_ledger.h"
#include "src/hexsim/device_profile.h"

namespace hexsim {

enum class DmaDirection : uint8_t {
  kDdrToTcm,
  kTcmToDdr,
};

class DmaEngine {
 public:
  DmaEngine(const DeviceProfile& profile, CycleLedger& ledger)
      : profile_(profile), ledger_(ledger) {}

  // 1D transfer. Returns the transfer time in seconds (caller decides whether it overlaps
  // compute; the busy time is always recorded on the DMA engine).
  double Transfer1D(void* dst, const void* src, int64_t bytes, DmaDirection dir);

  // 2D transfer: `rows` rows of `row_bytes`, with the given strides on each side.
  // Row lengths below ~256 bytes waste DDR burst bandwidth; efficiency scales with row size.
  double Transfer2D(void* dst, int64_t dst_stride, const void* src, int64_t src_stride,
                    int64_t row_bytes, int64_t rows, DmaDirection dir);

  // Timing-only variants (no data movement) for the analytic cost model.
  double Cost1D(int64_t bytes, DmaDirection dir) const;
  double Cost2D(int64_t row_bytes, int64_t rows, DmaDirection dir) const;

 private:
  double Bandwidth(DmaDirection dir) const {
    return (dir == DmaDirection::kDdrToTcm ? profile_.dma_read_gbps : profile_.dma_write_gbps) *
           1e9;
  }

  const DeviceProfile& profile_;
  CycleLedger& ledger_;
};

}  // namespace hexsim

#endif  // SRC_HEXSIM_DMA_H_

// Device profiles for the simulated Hexagon NPUs used in the paper's evaluation (Table 3):
//
//   OnePlus Ace3      — Snapdragon 8 Gen 2 — Hexagon V73
//   OnePlus 12        — Snapdragon 8 Gen 3 — Hexagon V75
//   OnePlus Ace5 Pro  — Snapdragon 8 Elite — Hexagon V79
//
// Each profile carries the microarchitectural parameters the timing model needs. The values
// are calibrated against the paper's own measurements (see DESIGN.md §5): HMX FP16 GEMM peak
// ~12 TFLOPS on V75 (Table 2), single HVX thread ~33 GFLOPS, DMA DDR read ~60 GB/s, HVX
// core-path read ~26 GB/s, vgather latency 24-48 packets (§5.2.1), and the qfloat-conversion
// overhead that disappears on V79 (§5.2.2).
#ifndef SRC_HEXSIM_DEVICE_PROFILE_H_
#define SRC_HEXSIM_DEVICE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hexsim {

enum class NpuArch : uint8_t {
  kV73,
  kV75,
  kV79,
};

const char* NpuArchName(NpuArch arch);

struct DeviceProfile {
  std::string device_name;  // e.g. "OnePlus 12"
  std::string soc_name;     // e.g. "Snapdragon 8 Gen 3"
  NpuArch arch = NpuArch::kV75;

  // --- NPU compute ---
  int hvx_threads = 4;            // usable HVX contexts for our workloads
  double hvx_freq_ghz = 1.3;      // vector/scalar clock
  double hmx_freq_ghz = 1.47;     // matrix unit clock
  int hmx_units = 1;              // number of HMX engines
  int hmx_tile_cycles = 8;        // cycles per 32x32x32 FP16 tile MAC op
  bool native_ieee_fp16 = false;  // V79+: HVX FP ops produce IEEE results directly (no qfloat)
  int vgather_packets = 32;       // latency of one 64x2B vgather, in instruction packets

  // --- NPU memory ---
  double dma_read_gbps = 60.0;      // DDR -> TCM/L2 via DMA, large regular blocks
  double dma_write_gbps = 40.0;     // TCM -> DDR
  double hvx_core_read_gbps = 26.0; // HVX loads through the core data path from DDR/L2
  double dma_descriptor_ns = 250.0; // fixed per-descriptor setup/completion cost
  int64_t tcm_bytes = 8ll << 20;    // software-managed on-chip memory
  int64_t l2_bytes = 1ll << 20;

  // 32-bit NPU virtual address space. On V73 the usable window is ~2 GiB (the paper cannot run
  // >=3B models on 8 Gen 2); newer parts expose closer to the full 4 GiB to a session.
  int64_t npu_vaddr_limit_bytes = 0;

  // --- host CPU (for lm_head fallback and the CPU portions of the runtime) ---
  int cpu_big_cores = 4;
  double cpu_gflops_per_core = 40.0;  // sustained FP16 NEON GEMM throughput per big core
  double cpu_mem_gbps = 28.0;         // per-socket effective stream bandwidth for GEMV weights

  // --- GPU (Adreno, for the llama.cpp OpenCL baseline model) ---
  double gpu_gflops = 1800.0;     // sustained FP16 ALU throughput
  double gpu_mem_gbps = 50.0;     // effective bandwidth of the Q4_0 GEMV kernels
  double gpu_batch_efficiency = 0.22;  // fraction of weight-reuse the OpenCL kernels achieve
                                       // when batch grows (paper: poor decode scaling)

  // --- power model (watts), calibrated to the 3.5-5 W envelope of §7.2.3 ---
  double p_base_w = 2.2;           // SoC + DRAM + rails floor in performance mode
  double p_hmx_w = 1.30;           // HMX at full utilization
  double p_hvx_thread_w = 0.33;    // each busy HVX thread
  double p_ddr_per_gbps_w = 0.018; // DDR interface per GB/s actually moved
  double p_cpu_core_w = 0.9;       // each busy big CPU core

  double HvxCyclesToSeconds(double cycles) const { return cycles / (hvx_freq_ghz * 1e9); }
  double HmxCyclesToSeconds(double cycles) const { return cycles / (hmx_freq_ghz * 1e9); }

  // Peak HMX FP16 throughput implied by the calibration, in GFLOPS.
  double HmxPeakGflops() const {
    const double flops_per_tile = 2.0 * 32 * 32 * 32;
    return flops_per_tile / hmx_tile_cycles * hmx_freq_ghz * hmx_units;
  }
};

// Returns the profile for one of the three evaluation devices.
const DeviceProfile& OnePlusAce3();    // 8 Gen 2 / V73
const DeviceProfile& OnePlus12();      // 8 Gen 3 / V75
const DeviceProfile& OnePlusAce5Pro(); // 8 Elite / V79

// All evaluation devices, in Table 3 order.
std::vector<const DeviceProfile*> AllDevices();

// Looks a device up by NPU arch.
const DeviceProfile& DeviceByArch(NpuArch arch);

// A derated "little" sibling of `base` for big/little fleet mixes (src/fleet): the same
// microarchitecture running on an efficiency-binned part — vector/matrix clocks and CPU
// throughput scaled down with a proportionally lower power envelope. Returned by value;
// callers (the fleet simulator) own the storage.
DeviceProfile LittleVariant(const DeviceProfile& base);

}  // namespace hexsim

#endif  // SRC_HEXSIM_DEVICE_PROFILE_H_

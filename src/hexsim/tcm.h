// Tightly Coupled Memory (TCM): the Hexagon NPU's 8 MiB software-managed on-chip scratchpad.
//
// All HMX operands and all vgather/vscatter targets must live in TCM (§3.1.2). The simulator
// models TCM as a host-side arena with bump allocation, explicit frames (kernels allocate a
// frame, use it, release it), and high-watermark tracking so tests can assert that kernels
// respect the 8 MiB budget (e.g. the exp LUT must only consume 64 KiB, §5.2.1).
#ifndef SRC_HEXSIM_TCM_H_
#define SRC_HEXSIM_TCM_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/tensor.h"

namespace hexsim {

class Tcm {
 public:
  explicit Tcm(int64_t capacity_bytes);

  // Allocates `bytes` with the given alignment; aborts if TCM is exhausted (a kernel tiling
  // bug, not a recoverable condition). Returns a host pointer into the arena.
  uint8_t* Alloc(int64_t bytes, int64_t alignment = 128);

  // Marks the current allocation point; Release() returns to it. Frames may nest.
  void PushFrame();
  void PopFrame();

  // Releases everything (including persistent allocations like the exp LUT).
  void Reset();

  // True if `p` points into the TCM arena (vgather/HMX operand validation).
  bool Contains(const void* p) const {
    const uint8_t* q = static_cast<const uint8_t*>(p);
    return q >= storage_.data() && q < storage_.data() + capacity_;
  }

  int64_t capacity() const { return capacity_; }
  int64_t used() const { return top_; }
  int64_t high_watermark() const { return high_watermark_; }
  int64_t free_bytes() const { return capacity_ - top_; }

  // Byte offset of `p` from the TCM base (the simulated TCM address; vgather offsets are
  // computed against this).
  int64_t OffsetOf(const void* p) const {
    HEXLLM_CHECK(Contains(p));
    return static_cast<const uint8_t*>(p) - storage_.data();
  }

  uint8_t* base() { return storage_.data(); }

 private:
  int64_t capacity_;
  int64_t top_ = 0;
  int64_t high_watermark_ = 0;
  std::vector<int64_t> frames_;
  hexllm::AlignedBuffer storage_;  // 128-byte aligned, like the hardware's vector-width banks
};

// RAII frame guard.
class TcmFrame {
 public:
  explicit TcmFrame(Tcm& tcm) : tcm_(tcm) { tcm_.PushFrame(); }
  ~TcmFrame() { tcm_.PopFrame(); }
  TcmFrame(const TcmFrame&) = delete;
  TcmFrame& operator=(const TcmFrame&) = delete;

 private:
  Tcm& tcm_;
};

}  // namespace hexsim

#endif  // SRC_HEXSIM_TCM_H_

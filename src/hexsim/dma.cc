#include "src/hexsim/dma.h"

#include <algorithm>
#include <cstring>

#include "src/base/check.h"

namespace hexsim {
namespace {

// DDR burst efficiency for a 2D descriptor with the given row length. Rows of >= 512 bytes
// saturate; a 32-byte row achieves only ~25% of peak. Smooth interpolation keeps the ablation
// sweeps well-behaved.
double RowEfficiency(int64_t row_bytes) {
  if (row_bytes >= 512) {
    return 1.0;
  }
  if (row_bytes <= 0) {
    return 0.05;
  }
  const double x = static_cast<double>(row_bytes) / 512.0;
  return 0.20 + 0.80 * x;
}

}  // namespace

double DmaEngine::Cost1D(int64_t bytes, DmaDirection dir) const {
  HEXLLM_DCHECK(bytes >= 0);
  return static_cast<double>(bytes) / Bandwidth(dir) + profile_.dma_descriptor_ns * 1e-9;
}

double DmaEngine::Cost2D(int64_t row_bytes, int64_t rows, DmaDirection dir) const {
  HEXLLM_DCHECK(row_bytes >= 0 && rows >= 0);
  const double bytes = static_cast<double>(row_bytes) * static_cast<double>(rows);
  const double eff = RowEfficiency(row_bytes);
  return bytes / (Bandwidth(dir) * eff) + profile_.dma_descriptor_ns * 1e-9;
}

double DmaEngine::Transfer1D(void* dst, const void* src, int64_t bytes, DmaDirection dir) {
  if (dst != nullptr && src != nullptr && bytes > 0) {
    std::memcpy(dst, src, static_cast<size_t>(bytes));
  }
  const double t = Cost1D(bytes, dir);
  ledger_.AddSeconds(Engine::kDma, t, "dma");
  ledger_.AddDmaBytes(bytes);
  ledger_.AddCount("dma.descriptors");
  return t;
}

double DmaEngine::Transfer2D(void* dst, int64_t dst_stride, const void* src, int64_t src_stride,
                             int64_t row_bytes, int64_t rows, DmaDirection dir) {
  if (dst != nullptr && src != nullptr && row_bytes > 0) {
    const uint8_t* s = static_cast<const uint8_t*>(src);
    uint8_t* d = static_cast<uint8_t*>(dst);
    for (int64_t r = 0; r < rows; ++r) {
      std::memcpy(d + r * dst_stride, s + r * src_stride, static_cast<size_t>(row_bytes));
    }
  }
  const double t = Cost2D(row_bytes, rows, dir);
  ledger_.AddSeconds(Engine::kDma, t, "dma");
  ledger_.AddDmaBytes(row_bytes * rows);
  ledger_.AddCount("dma.descriptors");
  return t;
}

}  // namespace hexsim

// HVX (Hexagon Vector eXtension) emulation: functional + timing.
//
// The simulator executes the subset of the HVX ISA the paper's kernels rely on, on 1024-bit
// (128-byte) registers, while counting *instruction packets*. One packet is charged per
// vector instruction (the VLIW scalar slots — address arithmetic, loop control — ride along
// for free, matching how hand-scheduled HVX kernels behave), with three deliberate
// exceptions modeled after the paper's measurements:
//
//   * vgather costs DeviceProfile::vgather_packets (24-48 on real parts, §5.2.1);
//   * vscatter costs vgather_packets + 8 (the paper calls baseline-GEMV scatters
//     "extremely costly", §7.4);
//   * serial dependency chains (e.g. Horner polynomial evaluation) stall the VLIW pipeline;
//     kernels model this with ChargeStalls() (§5.2.1: "polynomial evaluation involves
//     sequential dependencies, limiting instruction-level parallelism").
//
// qfloat: before V79, HVX float instructions produce results in Qualcomm's internal qfloat
// format, which costs an extra conversion instruction to turn back into IEEE FP16 (§5.2.2).
// Numerically qfloat carries *more* mantissa than FP16, so the emulation computes each op in
// binary32 and rounds to FP16 at the result — a faithful lower bound on qfloat precision.
// ConvertQf() charges the conversion packet on V73/V75 and is free on V79.
#ifndef SRC_HEXSIM_HVX_H_
#define SRC_HEXSIM_HVX_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "src/base/check.h"
#include "src/base/fp16.h"
#include "src/hexsim/cycle_ledger.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/tcm.h"

namespace hexsim {

// One 1024-bit HVX vector register.
struct HvxVec {
  static constexpr int kBytes = 128;
  static constexpr int kHalfwords = 64;
  static constexpr int kWords = 32;

  alignas(128) std::array<uint8_t, kBytes> b{};

  uint16_t GetU16(int i) const {
    HEXLLM_DCHECK(i >= 0 && i < kHalfwords);
    uint16_t v;
    std::memcpy(&v, b.data() + i * 2, 2);
    return v;
  }
  void SetU16(int i, uint16_t v) {
    HEXLLM_DCHECK(i >= 0 && i < kHalfwords);
    std::memcpy(b.data() + i * 2, &v, 2);
  }
  uint32_t GetU32(int i) const {
    HEXLLM_DCHECK(i >= 0 && i < kWords);
    uint32_t v;
    std::memcpy(&v, b.data() + i * 4, 4);
    return v;
  }
  void SetU32(int i, uint32_t v) {
    HEXLLM_DCHECK(i >= 0 && i < kWords);
    std::memcpy(b.data() + i * 4, &v, 4);
  }
  float GetF32(int i) const {
    HEXLLM_DCHECK(i >= 0 && i < kWords);
    float v;
    std::memcpy(&v, b.data() + i * 4, 4);
    return v;
  }
  void SetF32(int i, float v) {
    HEXLLM_DCHECK(i >= 0 && i < kWords);
    std::memcpy(b.data() + i * 4, &v, 4);
  }
  float GetHf(int i) const { return hexllm::F16BitsToF32(GetU16(i)); }
  void SetHf(int i, float v) { SetU16(i, hexllm::F32ToF16Bits(v)); }

  bool operator==(const HvxVec& o) const { return b == o.b; }
};

// A register pair (the result type of widening instructions and vlut16).
struct HvxVecPair {
  HvxVec lo;  // even/low results
  HvxVec hi;  // odd/high results
};

class HvxContext {
 public:
  explicit HvxContext(const DeviceProfile& profile) : profile_(profile) {}

  const DeviceProfile& profile() const { return profile_; }

  // --- packet accounting ---
  int64_t packets() const { return packets_; }
  void ResetPackets() { packets_ = 0; }
  // Adds `other`'s instruction counters into this context and zeroes them in `other`; used
  // by NpuDevice::MergeShards to fold per-lane shard accounting back into the parent.
  void AbsorbCounters(HvxContext& other) {
    packets_ += other.packets_;
    vgather_ops_ += other.vgather_ops_;
    vscatter_ops_ += other.vscatter_ops_;
    vlut16_ops_ += other.vlut16_ops_;
    other.packets_ = 0;
    other.vgather_ops_ = 0;
    other.vscatter_ops_ = 0;
    other.vlut16_ops_ = 0;
  }
  // Per-instruction-class counters for the observability layer (the LUT instructions are
  // the paper's headline mechanisms, so their usage is tracked explicitly).
  int64_t vgather_ops() const { return vgather_ops_; }
  int64_t vscatter_ops() const { return vscatter_ops_; }
  int64_t vlut16_ops() const { return vlut16_ops_; }
  // Re-applies the per-instruction-class counters of a previously simulated kernel without
  // re-executing its element math. The dequant-once weight cache replays a memoized
  // DequantCoalescedLut this way so every persistent counter stays bit-identical to the
  // re-simulated run (docs/performance.md); packet time is charged separately through
  // NpuDevice::CommitHvxPackets.
  void ReplayOps(int64_t vgather, int64_t vscatter, int64_t vlut16) {
    HEXLLM_DCHECK(vgather >= 0 && vscatter >= 0 && vlut16 >= 0);
    vgather_ops_ += vgather;
    vscatter_ops_ += vscatter;
    vlut16_ops_ += vlut16;
  }
  void Charge(int64_t n) {
    HEXLLM_DCHECK(n >= 0);
    packets_ += n;
  }
  // Models VLIW pipeline bubbles from serial dependency chains.
  void ChargeStalls(int64_t n) { Charge(n); }
  // Scalar-core work executed inline with the vector stream.
  void ChargeScalar(int64_t cycles) { Charge(cycles); }

  double PacketsToSeconds(int64_t n) const {
    return static_cast<double>(n) / (profile_.hvx_freq_ghz * 1e9);
  }

  // --- memory ---
  // Aligned vector load from TCM/L2-resident memory (1 packet).
  HvxVec LoadAligned(const void* src) {
    Charge(1);
    HvxVec v;
    std::memcpy(v.b.data(), src, HvxVec::kBytes);
    return v;
  }
  // Vector load streaming from DDR through the core data path: bandwidth-limited to
  // hvx_core_read_gbps (Table 2: ~26 GB/s), i.e. several cycles per 128 B.
  HvxVec LoadFromDdr(const void* src) {
    const double ns = HvxVec::kBytes / profile_.hvx_core_read_gbps;  // bytes / (GB/s) = ns
    const double cycles = ns * profile_.hvx_freq_ghz;
    Charge(static_cast<int64_t>(cycles + 0.5));
    HvxVec v;
    std::memcpy(v.b.data(), src, HvxVec::kBytes);
    return v;
  }
  void Store(void* dst, const HvxVec& v) {
    Charge(1);
    std::memcpy(dst, v.b.data(), HvxVec::kBytes);
  }

  // --- splats ---
  HvxVec VSplatB(uint8_t x);
  HvxVec VSplatH(uint16_t x);
  HvxVec VSplatW(uint32_t x);
  HvxVec VSplatHf(float x) { return VSplatH(hexllm::F32ToF16Bits(x)); }
  HvxVec VSplatSf(float x);

  // --- FP16 lanewise (64 lanes) ---
  HvxVec VAddHf(const HvxVec& a, const HvxVec& b);
  HvxVec VSubHf(const HvxVec& a, const HvxVec& b);
  HvxVec VMpyHf(const HvxVec& a, const HvxVec& b);
  HvxVec VMaxHf(const HvxVec& a, const HvxVec& b);
  HvxVec VMinHf(const HvxVec& a, const HvxVec& b);

  // --- FP32 lanewise (32 lanes) ---
  HvxVec VAddSf(const HvxVec& a, const HvxVec& b);
  HvxVec VSubSf(const HvxVec& a, const HvxVec& b);
  HvxVec VMpySf(const HvxVec& a, const HvxVec& b);
  HvxVec VMaxSf(const HvxVec& a, const HvxVec& b);

  // --- conversions ---
  // FP16 -> FP32 widen: lo gets lanes 0..31, hi gets lanes 32..63. 2 packets.
  HvxVecPair WidenHfToSf(const HvxVec& a);
  // FP32 pair -> FP16. 2 packets.
  HvxVec NarrowSfToHf(const HvxVecPair& p);
  // int16 lanes -> FP16 lanes (1 packet) and back (round-to-nearest, 1 packet).
  HvxVec VCvtHToHf(const HvxVec& a);
  HvxVec VCvtHfToH(const HvxVec& a);
  // FP32 lanes -> int32 (truncate) and int32 -> FP32. 1 packet each.
  HvxVec VCvtSfToW(const HvxVec& a);
  HvxVec VCvtWToSf(const HvxVec& a);
  // qfloat -> IEEE conversion: numerically identity in this model; charges a packet on parts
  // without native IEEE HVX results (V73/V75), free on V79 (§5.2.2).
  HvxVec ConvertQf(const HvxVec& a) {
    if (!profile_.native_ieee_fp16) {
      Charge(1);
    }
    return a;
  }

  // --- integer lanewise ---
  HvxVec VAnd(const HvxVec& a, const HvxVec& b);
  HvxVec VOr(const HvxVec& a, const HvxVec& b);
  HvxVec VXor(const HvxVec& a, const HvxVec& b);
  HvxVec VShlH(const HvxVec& a, int sh);   // logical shift left, u16 lanes
  HvxVec VShrH(const HvxVec& a, int sh);   // logical shift right, u16 lanes
  HvxVec VAShrH(const HvxVec& a, int sh);  // arithmetic shift right, i16 lanes
  HvxVec VShlW(const HvxVec& a, int sh);
  HvxVec VShrW(const HvxVec& a, int sh);
  HvxVec VAddH(const HvxVec& a, const HvxVec& b);  // wrapping u16 add
  HvxVec VSubH(const HvxVec& a, const HvxVec& b);
  HvxVec VAddW(const HvxVec& a, const HvxVec& b);
  HvxVec VSubW(const HvxVec& a, const HvxVec& b);
  HvxVec VSubB(const HvxVec& a, const HvxVec& b);  // wrapping u8 sub

  // --- permutation ---
  // Generic in-register byte permutation (models vdelta/vrdelta with a precomputed control).
  // out.b[i] = a.b[idx[i]]. 1 packet.
  HvxVec VPermuteBytes(const HvxVec& a, const std::array<uint8_t, 128>& idx);
  // Halfword interleave of two registers (models vshuff on a register pair). 2 packets.
  //   lo: a0 b0 a1 b1 ... a31 b31 ; hi: a32 b32 ... a63 b63
  HvxVecPair VShuffH(const HvxVec& a, const HvxVec& b);

  // --- table lookup ---
  // vlut16: each of the 128 byte indices in `idx` (low 4 bits used) selects one of the first
  // 16 halfwords of `table`. Produces 128 halfword results as a pair. 1 packet (§5.2.2).
  HvxVecPair VLut16(const HvxVec& idx, const HvxVec& table);

  // --- gather / scatter (TCM only, §3.1.2) ---
  // Gathers 64 halfwords: result[i] = tcm[base_offset + offsets.u16[i]]. Offsets are byte
  // offsets and must stay within a 64 KiB window (the vgather addressing limit that forces
  // the 32768-entry exp LUT, §5.2.1). Charges profile.vgather_packets.
  HvxVec VGather(Tcm& tcm, int64_t base_offset, const HvxVec& offsets);
  // Scatters 64 halfwords into TCM. Charges vgather_packets + 8.
  void VScatterH(Tcm& tcm, int64_t base_offset, const HvxVec& offsets, const HvxVec& values);

  // --- composite helpers (charge their constituent instructions) ---
  // Horizontal max of the FP16 lanes: log2(64) shuffle/max steps + extract.
  float ReduceMaxHf(const HvxVec& a);
  // Horizontal sum of the FP32 lanes: log2(32) steps + extract.
  float ReduceSumSf(const HvxVec& a);
  // Horizontal sum of FP16 lanes accumulated in FP32 (widen + reduce).
  float ReduceSumHfAsSf(const HvxVec& a);

 private:
  const DeviceProfile& profile_;
  int64_t packets_ = 0;
  int64_t vgather_ops_ = 0;
  int64_t vscatter_ops_ = 0;
  int64_t vlut16_ops_ = 0;
};

}  // namespace hexsim

#endif  // SRC_HEXSIM_HVX_H_

#include "src/hexsim/rpcmem.h"

#include <algorithm>

namespace hexsim {

std::shared_ptr<SharedBuffer> RpcmemPool::Alloc(int64_t bytes, std::string name) {
  HEXLLM_CHECK(bytes >= 0);
  auto buf = std::make_shared<SharedBuffer>(next_id_++, bytes, std::move(name));
  total_bytes_ += bytes;
  live_.push_back(buf);
  return buf;
}

void RpcmemPool::Free(const std::shared_ptr<SharedBuffer>& buf) {
  auto it = std::find(live_.begin(), live_.end(), buf);
  if (it != live_.end()) {
    total_bytes_ -= (*it)->size();
    live_.erase(it);
  }
}

bool NpuSession::MapBuffer(const std::shared_ptr<SharedBuffer>& buf) {
  if (mapped_bytes_ + buf->size() > profile_.npu_vaddr_limit_bytes) {
    return false;
  }
  mapped_bytes_ += buf->size();
  mapped_ids_.push_back(buf->id());
  return true;
}

void NpuSession::UnmapBuffer(const std::shared_ptr<SharedBuffer>& buf) {
  auto it = std::find(mapped_ids_.begin(), mapped_ids_.end(), buf->id());
  if (it != mapped_ids_.end()) {
    mapped_ids_.erase(it);
    mapped_bytes_ -= buf->size();
  }
}

double NpuSession::Submit(const OpRequest& req) {
  HEXLLM_CHECK_MSG(static_cast<bool>(handler_), "NpuSession has no op handler installed");
  ++submitted_ops_;
  handler_(req);
  return kMailboxLatencySeconds;
}

}  // namespace hexsim

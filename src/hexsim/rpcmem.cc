#include "src/hexsim/rpcmem.h"

#include <algorithm>

namespace hexsim {

std::shared_ptr<SharedBuffer> RpcmemPool::Alloc(int64_t bytes, std::string name) {
  HEXLLM_CHECK(bytes >= 0);
  std::lock_guard<std::mutex> lock(mu_);
  auto buf = std::make_shared<SharedBuffer>(next_id_++, bytes, std::move(name));
  total_bytes_ += bytes;
  ++alloc_count_;
  live_.push_back(buf);
  return buf;
}

void RpcmemPool::Free(const std::shared_ptr<SharedBuffer>& buf) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(live_.begin(), live_.end(), buf);
  if (it != live_.end()) {
    total_bytes_ -= (*it)->size();
    ++free_count_;
    live_.erase(it);
  }
}

void RpcmemPool::ExportTo(obs::Registry& registry) const {
  std::lock_guard<std::mutex> lock(mu_);
  registry.Count("rpcmem.allocs", alloc_count_);
  registry.Count("rpcmem.frees", free_count_);
  int64_t flushes = 0;
  for (const auto& buf : live_) {
    flushes += buf->flush_ops();
  }
  registry.Count("rpcmem.coherence_flushes", flushes);
  registry.Set("rpcmem.dmabuf_bytes", static_cast<double>(total_bytes_));
  registry.Set("rpcmem.live_buffers", static_cast<double>(live_.size()));
}

bool NpuSession::MapBuffer(const std::shared_ptr<SharedBuffer>& buf) {
  std::lock_guard<std::mutex> lock(mu_);
  if (mapped_bytes_ + buf->size() > profile_.npu_vaddr_limit_bytes) {
    return false;
  }
  mapped_bytes_ += buf->size();
  mapped_ids_.push_back(buf->id());
  return true;
}

void NpuSession::UnmapBuffer(const std::shared_ptr<SharedBuffer>& buf) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(mapped_ids_.begin(), mapped_ids_.end(), buf->id());
  if (it != mapped_ids_.end()) {
    mapped_ids_.erase(it);
    mapped_bytes_ -= buf->size();
  }
}

double NpuSession::Submit(const OpRequest& req) {
  HEXLLM_CHECK_MSG(static_cast<bool>(handler_), "NpuSession has no op handler installed");
  submitted_ops_.fetch_add(1, std::memory_order_relaxed);
  // CPU flush of the request slot + NPU invalidate before polling reads it (§6).
  coherence_ops_.fetch_add(2, std::memory_order_relaxed);
  handler_(req);
  return kMailboxLatencySeconds;
}

void NpuSession::ExportTo(obs::Registry& registry) const {
  registry.Count("session.submitted_ops", submitted_ops());
  registry.Count("session.coherence_ops", coherence_ops());
  registry.Set("session.mapped_bytes", static_cast<double>(mapped_bytes()));
  registry.Set("session.vaddr_limit_bytes", static_cast<double>(profile_.npu_vaddr_limit_bytes));
}

}  // namespace hexsim

// NpuDevice: the bundle of simulation state for one Hexagon NPU — profile, time ledger, TCM
// arena, DMA engine, HMX engine, and an HVX context. Kernels in src/kernels take an
// NpuDevice& and charge all their costs through it.
//
// Parallel execution (docs/threading_model.md): an NpuDevice is thread-COMPATIBLE, not
// thread-safe. Parallel kernels never share one device across lanes; instead the owner
// calls EnsureShards(n) up front and each ParallelFor slot s works against ForSlot(s) — a
// private child NpuDevice with its own ledger/TCM/engines. After the region the caller
// invokes MergeShards(), which folds every shard's ledger and HVX/HMX instruction counters
// back into the parent IN SLOT ORDER (deterministic floating-point summation) and zeroes
// the shards for reuse. Shard TCM high-watermarks are intentionally not merged: the
// parent's watermark tracks the capacity story of the real single-TCM device, while shard
// arenas model per-lane scratch partitions.
#ifndef SRC_HEXSIM_NPU_DEVICE_H_
#define SRC_HEXSIM_NPU_DEVICE_H_

#include <memory>
#include <vector>

#include "src/hexsim/cycle_ledger.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/dma.h"
#include "src/hexsim/hmx.h"
#include "src/hexsim/hvx.h"
#include "src/hexsim/tcm.h"
#include "src/obs/metrics.h"

namespace hexsim {

class NpuDevice {
 public:
  explicit NpuDevice(const DeviceProfile& profile)
      : profile_(profile),
        tcm_(profile.tcm_bytes),
        dma_(profile, ledger_),
        hmx_(profile),
        hvx_(profile) {}

  const DeviceProfile& profile() const { return profile_; }
  CycleLedger& ledger() { return ledger_; }
  const CycleLedger& ledger() const { return ledger_; }
  Tcm& tcm() { return tcm_; }
  const Tcm& tcm() const { return tcm_; }
  DmaEngine& dma() { return dma_; }
  HmxEngine& hmx() { return hmx_; }
  const HmxEngine& hmx() const { return hmx_; }
  HvxContext& hvx() { return hvx_; }
  const HvxContext& hvx() const { return hvx_; }

  // Converts HVX packets executed by a kernel into wall/busy seconds, given how many HVX
  // hardware threads the kernel spread its work across. Records busy time under `tag` and
  // returns the latency (busy / threads).
  double CommitHvxPackets(int64_t packets, int threads, std::string_view tag) {
    HEXLLM_CHECK(threads >= 1 && threads <= profile_.hvx_threads);
    const double busy = hvx_.PacketsToSeconds(packets);
    ledger_.AddSeconds(Engine::kHvx, busy, tag);
    return busy / threads;
  }

  // Records HMX tile-op time under `tag` and returns the latency.
  double CommitHmxTileOps(int64_t tile_ops, std::string_view tag) {
    const double t = hmx_.TileOpsToSeconds(tile_ops);
    ledger_.AddSeconds(Engine::kHmx, t, tag);
    return t;
  }

  // --- per-lane shard devices for deterministic parallel kernels ---
  //
  // EnsureShards/MergeShards must be called from the thread that owns this device, outside
  // any parallel region; ForSlot may be called concurrently from distinct slots.

  // Lazily creates shard devices 1..n-1 (slot 0 is the parent itself). Safe to call with a
  // smaller n later; existing shards are kept.
  void EnsureShards(int n) {
    while (static_cast<int>(shards_.size()) < n - 1) {
      shards_.push_back(std::make_unique<NpuDevice>(profile_));
    }
  }

  int shard_count() const { return static_cast<int>(shards_.size()) + 1; }

  // The device a ParallelFor body running as `slot` should charge against. Slot 0 is the
  // parent device, preserving the exact serial code path for 1-lane runs.
  NpuDevice& ForSlot(int slot) {
    if (slot == 0) {
      return *this;
    }
    HEXLLM_CHECK(slot >= 1 && slot <= static_cast<int>(shards_.size()));
    return *shards_[static_cast<size_t>(slot - 1)];
  }

  // Shard accessor for lut/scratch setup on the owner thread (1-based, matching ForSlot).
  NpuDevice& Shard(int i) { return ForSlot(i); }

  // Folds every shard's ledger and HVX/HMX instruction counters into the parent, in
  // ascending slot order, then zeroes the shard accounting (shard TCM contents — e.g.
  // per-lane exp LUTs — survive for the next region).
  void MergeShards() {
    for (auto& shard : shards_) {
      ledger_.MergeFrom(shard->ledger());
      shard->ledger().Clear();
      hvx_.AbsorbCounters(shard->hvx());
      hmx_.AbsorbTileOps(shard->hmx());
    }
  }

 private:
  const DeviceProfile& profile_;
  CycleLedger ledger_;
  Tcm tcm_;
  DmaEngine dma_;
  HmxEngine hmx_;
  HvxContext hvx_;
  std::vector<std::unique_ptr<NpuDevice>> shards_;
};

// Publishes the full activity profile of a simulated device into `registry` under the
// `hexsim.` unit prefix (docs/metrics_schema.md): the ledger (busy/wall seconds, DDR bytes,
// tag series, generic event counters) plus per-unit instruction counters:
//   counters hexsim.hvx.packets, hexsim.hvx.vgather_ops, hexsim.hvx.vscatter_ops,
//            hexsim.hvx.vlut16_ops, hexsim.hmx.tile_ops, hexsim.hmx.macs
//   gauges   hexsim.tcm.high_watermark_bytes, hexsim.tcm.capacity_bytes
inline void ExportDeviceMetrics(const NpuDevice& dev, obs::Registry& registry) {
  dev.ledger().ExportTo(registry);
  registry.Count("hexsim.hvx.packets", dev.hvx().packets());
  registry.Count("hexsim.hvx.vgather_ops", dev.hvx().vgather_ops());
  registry.Count("hexsim.hvx.vscatter_ops", dev.hvx().vscatter_ops());
  registry.Count("hexsim.hvx.vlut16_ops", dev.hvx().vlut16_ops());
  registry.Count("hexsim.hmx.tile_ops", dev.hmx().tile_ops());
  registry.Count("hexsim.hmx.macs", dev.hmx().tile_ops() * HmxEngine::kTileDim *
                                        HmxEngine::kTileDim * HmxEngine::kTileDim);
  registry.Set("hexsim.tcm.high_watermark_bytes", static_cast<double>(dev.tcm().high_watermark()));
  registry.Set("hexsim.tcm.capacity_bytes", static_cast<double>(dev.tcm().capacity()));
}

}  // namespace hexsim

#endif  // SRC_HEXSIM_NPU_DEVICE_H_

// NpuDevice: the bundle of simulation state for one Hexagon NPU — profile, time ledger, TCM
// arena, DMA engine, HMX engine, and an HVX context. Kernels in src/kernels take an
// NpuDevice& and charge all their costs through it.
#ifndef SRC_HEXSIM_NPU_DEVICE_H_
#define SRC_HEXSIM_NPU_DEVICE_H_

#include "src/hexsim/cycle_ledger.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/dma.h"
#include "src/hexsim/hmx.h"
#include "src/hexsim/hvx.h"
#include "src/hexsim/tcm.h"

namespace hexsim {

class NpuDevice {
 public:
  explicit NpuDevice(const DeviceProfile& profile)
      : profile_(profile),
        tcm_(profile.tcm_bytes),
        dma_(profile, ledger_),
        hmx_(profile),
        hvx_(profile) {}

  const DeviceProfile& profile() const { return profile_; }
  CycleLedger& ledger() { return ledger_; }
  const CycleLedger& ledger() const { return ledger_; }
  Tcm& tcm() { return tcm_; }
  DmaEngine& dma() { return dma_; }
  HmxEngine& hmx() { return hmx_; }
  HvxContext& hvx() { return hvx_; }

  // Converts HVX packets executed by a kernel into wall/busy seconds, given how many HVX
  // hardware threads the kernel spread its work across. Records busy time under `tag` and
  // returns the latency (busy / threads).
  double CommitHvxPackets(int64_t packets, int threads, std::string_view tag) {
    HEXLLM_CHECK(threads >= 1 && threads <= profile_.hvx_threads);
    const double busy = hvx_.PacketsToSeconds(packets);
    ledger_.AddSeconds(Engine::kHvx, busy, tag);
    return busy / threads;
  }

  // Records HMX tile-op time under `tag` and returns the latency.
  double CommitHmxTileOps(int64_t tile_ops, std::string_view tag) {
    const double t = hmx_.TileOpsToSeconds(tile_ops);
    ledger_.AddSeconds(Engine::kHmx, t, tag);
    return t;
  }

 private:
  const DeviceProfile& profile_;
  CycleLedger ledger_;
  Tcm tcm_;
  DmaEngine dma_;
  HmxEngine hmx_;
  HvxContext hvx_;
};

}  // namespace hexsim

#endif  // SRC_HEXSIM_NPU_DEVICE_H_

#include "src/exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

#include "src/base/check.h"

namespace hexec {
namespace {

// Per-thread parallelism state. `tls_in_region` marks that the current thread is executing
// a ParallelFor body (nested loops collapse to serial); `tls_override` is the
// ParallelismOverride pin (0 = none).
thread_local bool tls_in_region = false;
thread_local int tls_override = 0;

std::atomic<int64_t> g_parallel_for_calls{0};

int DefaultLanes() {
  if (const char* env = std::getenv("HEXLLM_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) {
      return static_cast<int>(std::min<long>(v, 256));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(hw == 0 ? 1u : hw, 8u));
}

}  // namespace

ThreadPool::ThreadPool(int workers) {
  HEXLLM_CHECK(workers >= 0);
  queues_.resize(static_cast<size_t>(workers));
  threads_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  if (threads_.empty()) {
    // No workers: run inline. Submit()'s packaged_task still routes any exception into the
    // future, so callers observe identical semantics.
    executed_.fetch_add(1, std::memory_order_relaxed);
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[next_queue_].push_back(std::move(fn));
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  cv_.notify_one();
}

bool ThreadPool::TryPop(int worker, std::function<void()>* out) {
  // Caller holds mu_. Own queue first (front), then steal from the back of siblings.
  auto& own = queues_[static_cast<size_t>(worker)];
  if (!own.empty()) {
    *out = std::move(own.front());
    own.pop_front();
    return true;
  }
  const size_t n = queues_.size();
  for (size_t i = 1; i < n; ++i) {
    auto& q = queues_[(static_cast<size_t>(worker) + i) % n];
    if (!q.empty()) {
      *out = std::move(q.back());
      q.pop_back();
      stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int worker) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || TryPop(worker, &task); });
      if (!task) {
        if (stop_) {
          // Drain: on shutdown keep pulling until every queue is empty.
          if (!TryPop(worker, &task)) {
            return;
          }
        } else {
          continue;
        }
      }
    }
    const int act = active_.fetch_add(1, std::memory_order_relaxed) + 1;
    int peak = peak_active_.load(std::memory_order_relaxed);
    while (act > peak &&
           !peak_active_.compare_exchange_weak(peak, act, std::memory_order_relaxed)) {
    }
    task();
    active_.fetch_sub(1, std::memory_order_relaxed);
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultLanes() - 1);
  return *pool;
}

int MaxSlots() {
  if (tls_override > 0) {
    return tls_override;
  }
  return ThreadPool::Global().workers() + 1;
}

int PlannedSlots(int64_t n) {
  if (n <= 1 || tls_in_region) {
    return 1;
  }
  return static_cast<int>(std::min<int64_t>(MaxSlots(), n));
}

int ParallelFor(int64_t n, const std::function<void(int64_t, int64_t, int)>& body,
                int max_slots) {
  if (n <= 0) {
    return 0;
  }
  g_parallel_for_calls.fetch_add(1, std::memory_order_relaxed);
  int slots = PlannedSlots(n);
  slots = std::min(slots, std::max(1, max_slots));
  if (slots == 1) {
    const bool prev = tls_in_region;
    tls_in_region = true;
    try {
      body(0, n, 0);
    } catch (...) {
      tls_in_region = prev;
      throw;
    }
    tls_in_region = prev;
    return 1;
  }

  auto range_begin = [n, slots](int s) { return n * s / slots; };

  ThreadPool& pool = ThreadPool::Global();
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(slots - 1));
  const bool inline_extra_slots = pool.workers() == 0;
  if (!inline_extra_slots) {
    for (int s = 1; s < slots; ++s) {
      futures.push_back(pool.Submit([&body, range_begin, s] {
        const bool prev = tls_in_region;
        tls_in_region = true;
        try {
          body(range_begin(s), range_begin(s + 1), s);
        } catch (...) {
          tls_in_region = prev;
          throw;
        }
        tls_in_region = prev;
      }));
    }
  }

  // Slot 0 runs on the caller; with a 0-worker pool (override > 1 under
  // HEXLLM_NUM_THREADS=1) every slot runs here sequentially in ascending order, preserving
  // the exact slot decomposition with zero concurrency.
  std::exception_ptr first_error;
  const bool prev = tls_in_region;
  tls_in_region = true;
  const int caller_slots = inline_extra_slots ? slots : 1;
  for (int s = 0; s < caller_slots; ++s) {
    try {
      body(range_begin(s), range_begin(s + 1), s);
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  tls_in_region = prev;

  // Wait for every slot (even after a failure — bodies may reference caller stack state),
  // then rethrow the lowest-slot exception.
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  return slots;
}

ParallelismOverride::ParallelismOverride(int slots) : prev_(tls_override) {
  HEXLLM_CHECK(slots >= 1);
  tls_override = slots;
}

ParallelismOverride::~ParallelismOverride() { tls_override = prev_; }

void ExportPoolMetrics(obs::Registry& registry) {
  ThreadPool& pool = ThreadPool::Global();
  registry.Set("exec.pool.workers", static_cast<double>(pool.workers()));
  registry.Set("exec.pool.peak_active", static_cast<double>(pool.peak_active()));
  registry.Count("exec.tasks.executed", pool.tasks_executed());
  registry.Count("exec.tasks.stolen", pool.tasks_stolen());
  registry.Count("exec.parallel_for.calls",
                 g_parallel_for_calls.load(std::memory_order_relaxed));
}

}  // namespace hexec

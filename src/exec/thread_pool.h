/// \file
/// The parallel execution layer: a fixed-size work-stealing thread pool plus the
/// deterministic `ParallelFor` every hot path in the repo parallelizes through.
///
/// The paper's end-to-end wins come from keeping heterogeneous units busy at once (HMX
/// decoding while the CPU runs lm_head, §6/§7.2.2). This module is the host-side substrate
/// for that: kernels split tile strips across lanes, the functional transformer decodes
/// batch rows in parallel, and the serving layer overlaps the CPU `lm_head` with the next
/// NPU step — all without changing a single simulated count or decoded token.
///
/// Determinism contract (docs/threading_model.md):
///   * `ParallelFor(n, body)` partitions [0, n) into `slots` CONTIGUOUS ranges with a
///     static rule (slot s gets [n*s/slots, n*(s+1)/slots)). The partition depends only on
///     (n, slots), never on which worker runs a range or in what order.
///   * `body(begin, end, slot)` receives the slot index; callers key per-lane state
///     (NpuDevice shards, scratch buffers) on it. Slot 0 always runs on the calling
///     thread, so a 1-slot run is exactly the legacy serial code path.
///   * Work stealing moves whole slot-tasks between worker queues; a stolen task keeps its
///     slot index, so results are bit-identical run to run regardless of scheduling.
///   * A nested `ParallelFor` (called from inside a body) runs inline as a single slot —
///     parallelism never recursively multiplies.
///
/// The global pool is sized once from `HEXLLM_NUM_THREADS` (total lanes, including the
/// caller; 1 disables workers entirely). Tests pin the lane count per-thread with
/// `ParallelismOverride` regardless of the pool size.
#ifndef SRC_EXEC_THREAD_POOL_H_
#define SRC_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace hexec {

/// Fixed-size pool of worker threads with per-worker task queues and work stealing: an
/// idle worker first drains its own queue front-to-back, then steals from the back of its
/// siblings' queues. Tasks are type-erased thunks; `Submit` returns a `std::future` that
/// carries the task's result or its exception.
class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is valid: every task then runs inline on the submitting
  /// thread, which keeps single-threaded builds free of any synchronization).
  explicit ThreadPool(int workers);
  /// Drains the queues and joins every worker. Queued tasks still run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Schedules `fn` on the pool (round-robin across worker queues) and returns a future
  /// for its result. With zero workers the task runs inline before Submit returns.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    Enqueue([task]() { (*task)(); });
    return fut;
  }

  /// --- lifetime counters (relaxed atomics; exported as exec.* metrics) ---
  int64_t tasks_executed() const { return executed_.load(std::memory_order_relaxed); }
  /// Tasks a worker took from another worker's queue.
  int64_t tasks_stolen() const { return stolen_.load(std::memory_order_relaxed); }
  /// Peak number of workers simultaneously executing tasks (pool occupancy high-water).
  int peak_active() const { return peak_active_.load(std::memory_order_relaxed); }

  /// The process-wide pool, sized from HEXLLM_NUM_THREADS on first use (lanes - 1 workers;
  /// unset defaults to min(hardware_concurrency, 8) lanes).
  static ThreadPool& Global();

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop(int worker);
  bool TryPop(int worker, std::function<void()>* out);

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  size_t next_queue_ = 0;                                // round-robin submission cursor
  std::vector<std::deque<std::function<void()>>> queues_;  // one per worker
  std::vector<std::thread> threads_;

  std::atomic<int64_t> executed_{0};
  std::atomic<int64_t> stolen_{0};
  std::atomic<int> active_{0};
  std::atomic<int> peak_active_{0};
};

/// Total parallel lanes the calling thread would use: the per-thread override if one is
/// active, else global pool workers + 1 (the caller is always lane 0).
int MaxSlots();

/// Lanes a `ParallelFor(n, ...)` issued from this thread right now would actually use:
/// min(MaxSlots(), n), collapsing to 1 inside an already-running parallel region. Callers
/// use this to size per-slot state (device shards, scratch buffers) before the loop.
int PlannedSlots(int64_t n);

/// Runs `body(begin, end, slot)` over a deterministic static partition of [0, n) (see the
/// file comment for the contract). Slot 0 executes on the calling thread; slots >= 1 are
/// pool tasks. Returns the number of slots used. If any body throws, the lowest-slot
/// exception is rethrown on the caller after every slot finished. `max_slots` additionally
/// caps the lane count (callers with a fixed amount of per-slot state pass its size).
int ParallelFor(int64_t n, const std::function<void(int64_t, int64_t, int)>& body,
                int max_slots = 1 << 30);

/// Overload for lambdas (and any other non-std::function callable). Wraps the callable by
/// reference (std::ref fits in std::function's small-object buffer), so calling ParallelFor
/// with a fat-capture lambda performs NO heap allocation — load-bearing for the zero-alloc
/// steady-state decode contract (docs/performance.md). The callable only needs to outlive
/// the call, which ParallelFor's synchronous completion guarantees.
template <typename F>
  requires(!std::is_same_v<std::remove_cvref_t<F>, std::function<void(int64_t, int64_t, int)>>)
int ParallelFor(int64_t n, F&& body, int max_slots = 1 << 30) {
  const std::function<void(int64_t, int64_t, int)> fn(std::ref(body));
  return ParallelFor(n, fn, max_slots);
}

/// RAII per-thread lane-count pin for tests: forces PlannedSlots/ParallelFor on this
/// thread to use exactly `slots` lanes (1 = serial) regardless of the pool size. With a
/// 0-worker pool, extra lanes run inline on the caller in ascending slot order, so the
/// slot decomposition — and therefore every per-slot accounting total — is still
/// exercised without any concurrency.
class ParallelismOverride {
 public:
  explicit ParallelismOverride(int slots);
  ~ParallelismOverride();
  ParallelismOverride(const ParallelismOverride&) = delete;
  ParallelismOverride& operator=(const ParallelismOverride&) = delete;

 private:
  int prev_;
};

/// Publishes the global pool's counters into `registry` (docs/metrics_schema.md):
///   gauges   exec.pool.workers, exec.pool.peak_active
///   counters exec.tasks.executed, exec.tasks.stolen, exec.parallel_for.calls
/// The counters are process-lifetime monotonic, not per-run deltas.
void ExportPoolMetrics(obs::Registry& registry);

}  // namespace hexec

#endif  // SRC_EXEC_THREAD_POOL_H_
